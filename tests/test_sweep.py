"""Sweep driver tests: specs, scenario runs, worker pool, merged manifest."""

import json
import multiprocessing as mp
import sys
from pathlib import Path

import pytest

from repro.backends.c_backend import c_compiler_available
from repro.pfm.parameters import make_two_phase_binary
from repro.service.sweep import (
    SWEEP_SCHEMA,
    ScenarioSpec,
    demo_specs,
    load_sweep_manifest,
    run_scenario,
    run_sweep,
)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork start method"
)

TOOLS = Path(__file__).resolve().parents[1] / "tools"


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "kernel-cache"))
    yield tmp_path / "kernel-cache"


def _tiny(name="s0", **kw):
    kw.setdefault("model", "binary2")
    kw.setdefault("shape", (12, 12))
    kw.setdefault("steps", 2)
    kw.setdefault("backend", "numpy")
    return ScenarioSpec(name=name, **kw)


class TestScenarioSpec:
    def test_roundtrip(self):
        spec = _tiny(overrides={"undercooling": 0.3}, seed=5)
        again = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            ScenarioSpec(name="x", model="nope")

    def test_shape_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dim=2"):
            ScenarioSpec(name="x", shape=(8, 8, 8))

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            ScenarioSpec.from_dict({"name": "x", "bogus": 1})

    def test_undercooling_override_sets_temperature(self):
        params = _tiny(overrides={"undercooling": 0.4}).build_parameters()
        base = make_two_phase_binary(dim=2)
        assert float(params.temperature.expr) == pytest.approx(0.6)
        assert params.temperature.expr != base.temperature.expr

    def test_plain_override_sets_field(self):
        params = _tiny(overrides={"dt": 0.01}).build_parameters()
        assert params.dt == 0.01

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="no field"):
            _tiny(overrides={"not_a_field": 1}).build_parameters()


class TestRunScenario:
    def test_single_scenario_produces_rundir(self, tmp_path, cache_dir):
        spec = _tiny(steps=3)
        summary = run_scenario(spec, tmp_path / "run")
        assert summary["status"] == "ok"
        assert summary["steps"] == 3 and summary["cells"] == 144
        assert summary["codegen_seconds"] > 0
        assert summary["diagnostics_rows"] >= 3
        assert "free_energy" in summary["final"]
        rundir = tmp_path / "run"
        manifest = json.loads((rundir / "manifest.json").read_text())
        assert manifest["status"] == "ok"
        assert manifest["config"]["name"] == spec.name
        assert (rundir / "diagnostics.csv").exists()
        assert (rundir / "metrics.prom").exists()


@needs_fork
class TestRunSweep:
    def test_sweep_merges_scenarios(self, tmp_path, cache_dir):
        specs = [_tiny(f"s{i}", seed=i) for i in range(3)]
        manifest = run_sweep(specs, tmp_path / "sweep", workers=2)
        assert manifest["schema"] == SWEEP_SCHEMA
        totals = manifest["totals"]
        assert totals["ok"] == 3 and totals["failed"] == 0
        assert totals["cell_updates"] == 3 * 144 * 2
        assert len(manifest["scenarios"]) == 3
        for entry in manifest["scenarios"]:
            assert entry["status"] == "ok"
            # rundir is recorded relative to the sweep dir so the manifest
            # survives the directory being moved or uploaded as an artifact
            assert not Path(entry["rundir"]).is_absolute()
            assert (tmp_path / "sweep" / entry["rundir"] / "manifest.json").exists()
        # the merged manifest is on disk and loadable
        again = load_sweep_manifest(tmp_path / "sweep")
        assert again["totals"]["ok"] == 3
        assert (tmp_path / "sweep" / "metrics.prom").exists()
        assert manifest["queue_depth_samples"]

    def test_failing_scenario_recorded_not_fatal(self, tmp_path, cache_dir):
        specs = [
            _tiny("good"),
            _tiny("bad", overrides={"not_a_field": 1}),
        ]
        manifest = run_sweep(specs, tmp_path / "sweep", workers=2)
        by_name = {e.get("name"): e for e in manifest["scenarios"]}
        assert by_name["good"]["status"] == "ok"
        assert by_name["bad"]["status"] == "failed"
        assert "no field" in by_name["bad"]["error"]
        assert manifest["totals"] == pytest.approx(
            manifest["totals"] | {"ok": 1, "failed": 1}
        )

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            run_sweep([_tiny("a"), _tiny("a")], tmp_path / "sweep")

    @pytest.mark.skipif(
        not c_compiler_available(), reason="no C compiler available"
    )
    def test_workers_share_the_disk_cache(self, tmp_path, cache_dir):
        """A warm second sweep compiles nothing in any worker."""
        specs = [_tiny(f"c{i}", backend="c", seed=i) for i in range(2)]
        cold = run_sweep(specs, tmp_path / "cold", workers=2)
        assert cold["totals"]["ok"] == 2
        assert cold["totals"]["disk_builds"] > 0
        warm = run_sweep(specs, tmp_path / "warm", workers=2)
        assert warm["totals"]["ok"] == 2
        assert warm["totals"]["disk_builds"] == 0
        assert warm["totals"]["disk_hits"] > 0


class TestManifestValidation:
    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "sweep.json"
        bad.write_text(json.dumps({"schema": "bogus/9"}))
        with pytest.raises(ValueError, match="schema"):
            load_sweep_manifest(tmp_path)

    def test_demo_specs_are_valid_and_distinct(self):
        specs = demo_specs(4)
        assert len({s.name for s in specs}) == 4
        for spec in specs:
            spec.build_parameters()


@needs_fork
class TestSweepTools:
    @pytest.fixture
    def sweep_dir(self, tmp_path, cache_dir):
        run_sweep([_tiny(f"s{i}") for i in range(2)], tmp_path / "sw", workers=1)
        return tmp_path / "sw"

    def test_check_observability_require_sweep(self, sweep_dir, capsys):
        sys.path.insert(0, str(TOOLS))
        try:
            from check_observability import check_sweep

            check_sweep(sweep_dir)
        finally:
            sys.path.remove(str(TOOLS))
        assert "sweep manifest ok" in capsys.readouterr().out

    def test_run_report_renders_sweep_section(self, sweep_dir):
        sys.path.insert(0, str(TOOLS))
        try:
            from run_report import main as report_main

            assert report_main([str(sweep_dir)]) == 0
        finally:
            sys.path.remove(str(TOOLS))
        html = (sweep_dir / "report.html").read_text()
        for needle in ("Sweep summary", "Queue depth", "Scenarios", "s0", "s1"):
            assert needle in html
