"""Integration tests of the grand-potential model: physics on small grids."""

import numpy as np
import pytest

from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    add_seed,
    make_two_phase_binary,
    planar_front,
)


@pytest.fixture(scope="module")
def binary_model():
    return GrandPotentialModel(make_two_phase_binary(dim=2))


@pytest.fixture(scope="module")
def binary_kernels_full(binary_model):
    return binary_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="module")
def binary_kernels_split(binary_model):
    return binary_model.create_kernels(variant_phi="split", variant_mu="split")


def _front_solver(kernels, shape=(24, 16), position=8.0):
    s = SingleBlockSolver(kernels, shape, boundary=("neumann", "periodic"))
    p = kernels.model.params
    phi0 = planar_front(
        shape, p.n_phases, solid_phase=0, liquid_phase=1,
        position=position, epsilon=p.epsilon,
    )
    s.set_state(phi0, mu=0.0)
    return s


class TestInvariants:
    def test_simplex_preserved(self, binary_kernels_full):
        s = _front_solver(binary_kernels_full)
        s.step(30)
        s.check_invariants()

    def test_bounded_mu(self, binary_kernels_full):
        s = _front_solver(binary_kernels_full)
        s.step(30)
        assert np.all(np.isfinite(s.mu))
        assert np.abs(s.mu).max() < 1.0

    def test_undercooled_melt_solidifies(self, binary_kernels_full):
        s = _front_solver(binary_kernels_full)
        f0 = s.phase_fractions()[0]
        s.step(100)
        f1 = s.phase_fractions()[0]
        assert f1 > f0, "solid fraction must grow in an undercooled melt"

    def test_pure_bulk_is_stationary(self, binary_kernels_full):
        """A single-phase bulk state must not evolve (bulk stability)."""
        s = SingleBlockSolver(binary_kernels_full, (10, 10))
        n = binary_kernels_full.model.params.n_phases
        phi0 = np.zeros((10, 10, n))
        phi0[..., 1] = 1.0  # pure liquid
        s.set_state(phi0, mu=0.0)
        s.step(20)
        np.testing.assert_allclose(s.phi[..., 1], 1.0, atol=1e-12)
        np.testing.assert_allclose(s.mu, 0.0, atol=1e-12)


class TestSplitFullEquivalence:
    def test_split_and_full_trajectories_match(
        self, binary_kernels_full, binary_kernels_split
    ):
        """The µ/φ-split kernels must produce the same physics as the full
        variants (they are algebraically identical rearrangements)."""
        s_full = _front_solver(binary_kernels_full)
        s_split = _front_solver(binary_kernels_split)
        s_full.step(20)
        s_split.step(20)
        np.testing.assert_allclose(s_split.phi, s_full.phi, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(s_split.mu, s_full.mu, rtol=1e-9, atol=1e-12)


class TestSymmetry:
    def test_phase_swap_symmetry(self, binary_model, binary_kernels_full):
        """Mirroring the initial condition mirrors the result."""
        p = binary_model.params
        shape = (20, 12)
        s1 = SingleBlockSolver(binary_kernels_full, shape, boundary="periodic")
        s2 = SingleBlockSolver(binary_kernels_full, shape, boundary="periodic")
        phi0 = planar_front(shape, p.n_phases, 0, 1, position=7.0, epsilon=p.epsilon)
        s1.set_state(phi0, mu=0.0)
        s2.set_state(phi0[::-1].copy(), mu=0.0)
        s1.step(15)
        s2.step(15)
        np.testing.assert_allclose(s2.phi, s1.phi[::-1], rtol=1e-9, atol=1e-11)

    def test_translation_invariance_periodic(self, binary_model, binary_kernels_full):
        p = binary_model.params
        shape = (16, 16)
        seed_phi = np.zeros(shape + (2,))
        seed_phi[..., 1] = 1.0
        seed_phi = add_seed(seed_phi, (8.0, 8.0), 4.0, 0, 1, p.epsilon)
        rolled = np.roll(seed_phi, shift=4, axis=1)
        s1 = SingleBlockSolver(binary_kernels_full, shape, boundary="periodic")
        s2 = SingleBlockSolver(binary_kernels_full, shape, boundary="periodic")
        s1.set_state(seed_phi, mu=0.0)
        s2.set_state(rolled, mu=0.0)
        s1.step(10)
        s2.step(10)
        np.testing.assert_allclose(np.roll(s1.phi, 4, axis=1), s2.phi, rtol=1e-9, atol=1e-11)


class TestProjection:
    def test_projection_restores_simplex(self, binary_model):
        from repro.backends import compile_numpy_kernel, create_arrays
        from repro.ir import create_kernel

        proj = compile_numpy_kernel(create_kernel(binary_model.projection_collection()))
        arrays = create_arrays(proj.kernel.fields, (6, 6), 1)
        rng = np.random.default_rng(0)
        arrays["phi_dst"][...] = rng.normal(0.5, 0.3, arrays["phi_dst"].shape)
        proj(arrays, ghost_layers=1)
        interior = arrays["phi_dst"][1:-1, 1:-1]
        assert np.all(interior >= 0) and np.all(interior <= 1)
        np.testing.assert_allclose(interior.sum(axis=-1), 1.0, rtol=1e-12)


class TestModelStructure:
    def test_energy_density_terms(self, binary_model):
        density = binary_model.energy_density()
        from repro.symbolic import Diff

        assert density.atoms(Diff), "gradient energy missing"

    def test_phi_system_size(self, binary_model):
        system = binary_model.phi_system()
        assert len(system) == binary_model.params.n_phases

    def test_mu_system_size(self, binary_model):
        system = binary_model.mu_system()
        assert len(system) == binary_model.params.n_mu

    def test_lagrange_multiplier_conserves_sum(self, binary_model):
        """Σ_α rhs_α of the φ system must vanish identically (no fluctuations)."""
        import sympy as sp

        system = binary_model.phi_system()
        total = sp.Add(*[eq.rhs for eq in system.equations])
        assert sp.simplify(total) == 0

    def test_configuration_parameter_count(self, binary_model):
        n = binary_model.params.configuration_parameter_count()
        # 2 phases x 2(1+1+1) driving force + 2x1 mobility + 2x1 pairwise
        assert n == 16

    def test_fluctuation_term_appears(self):
        from repro.pfm import make_two_phase_binary
        from repro.symbolic import RandomValue

        p = make_two_phase_binary(dim=2)
        p.fluctuation_amplitude = 0.01
        m = GrandPotentialModel(p)
        system = m.phi_system()
        assert any(eq.rhs.atoms(RandomValue) for eq in system.equations)
