"""GPU register-pressure machinery: liveness, scheduling, remat, model."""

import pytest
import sympy as sp

from repro.gpu import (
    TESLA_P100,
    TransformationSequence,
    analyze_liveness,
    apply_sequence,
    estimate_registers,
    evolutionary_tune,
    insert_fences,
    max_live,
    rematerialize,
    schedule_for_registers,
)
from repro.gpu.scheduling import dfs_schedule
from repro.ir import create_kernel
from repro.symbolic import Assignment, AssignmentCollection, Field


def _chain_kernel(n=6):
    """n independent pairs: bad order keeps all temporaries alive."""
    f = Field("cf", 2)
    g = Field("cg", 2)
    temps = [sp.Symbol(f"t{i}") for i in range(n)]
    subs = [Assignment(temps[i], f[i - n // 2, 0]() + i) for i in range(n)]
    main = [Assignment(g.center(), sp.Add(*temps))]
    return AssignmentCollection(main, subs)


def _tree_kernel(depth=4):
    """A binary reduction tree — DFS order needs O(depth) registers."""
    f = Field("tf", 2)
    g = Field("tg", 2)
    leaves = [f[i - 8, 0]() for i in range(2**depth)]
    subs = []
    level = leaves
    counter = 0
    while len(level) > 1:
        nxt = []
        for a, b in zip(level[::2], level[1::2]):
            s = sp.Symbol(f"n{counter}")
            counter += 1
            subs.append(Assignment(s, a + b))
            nxt.append(s)
        level = nxt
    main = [Assignment(g.center(), level[0])]
    return AssignmentCollection(main, subs)


class TestLiveness:
    def test_chain_all_alive(self):
        ac = _chain_kernel(6)
        assert max_live(ac.all_assignments) == 6

    def test_dead_value_not_live(self):
        f, g = Field("df", 2), Field("dg", 2)
        x = sp.Symbol("x")
        ac = AssignmentCollection(
            [Assignment(g.center(), f.center())], [Assignment(x, 42)]
        )
        assert max_live(ac.all_assignments) == 0

    def test_registers_estimate(self):
        live = analyze_liveness(_chain_kernel(10).all_assignments)
        assert live.registers(base=24) == 24 + 20


class TestScheduling:
    def test_tree_scheduling_reduces_live(self):
        ac = _tree_kernel(4)
        # breadth-first order (level by level) keeps a whole level alive
        naive = max_live(ac.all_assignments)
        result = schedule_for_registers(ac.all_assignments, beam_width=8)
        assert result.max_live < naive
        assert result.max_live <= 5  # DFS needs ~depth+1

    def test_schedule_preserves_dependencies(self):
        ac = _tree_kernel(3)
        result = schedule_for_registers(ac.all_assignments, beam_width=4)
        seen = set()
        for a in result.order:
            for s in a.rhs.free_symbols:
                if s.name.startswith("n"):
                    assert s in seen, "operand scheduled after its use"
            seen.add(a.lhs)

    def test_schedule_keeps_all_statements(self):
        ac = _tree_kernel(3)
        result = schedule_for_registers(ac.all_assignments, beam_width=2)
        assert len(result.order) == len(ac.all_assignments)
        assert {id(type(a)) for a in result.order}  # sanity

    def test_dfs_schedule_valid_topological_order(self):
        ac = _tree_kernel(4)
        order = dfs_schedule(ac.all_assignments)
        assert len(order) == len(ac.all_assignments)
        seen = set()
        for a in order:
            deps = {s for s in a.rhs.free_symbols if s.name.startswith("n")}
            assert deps <= seen
            seen.add(a.lhs)

    def test_greedy_beam_width_one_works(self):
        ac = _tree_kernel(3)
        r = schedule_for_registers(ac.all_assignments, beam_width=1)
        assert r.max_live <= max_live(ac.all_assignments)


class TestRematerialize:
    def test_cheap_temp_inlined(self):
        f, g = Field("rf", 2), Field("rg", 2)
        t = sp.Symbol("t0")
        ac = AssignmentCollection(
            [Assignment(g.center(), t * 2 + t**2)],
            [Assignment(t, f.center() + 1)],
        )
        out = rematerialize(ac.all_assignments, max_cost=2)
        temps = [a for a in out if not a.is_field_store]
        assert not temps  # inlined everywhere

    def test_expensive_temp_kept(self):
        f, g = Field("rf2", 2), Field("rg2", 2)
        t = sp.Symbol("t0")
        expensive = sum(f[i - 2, 0]() for i in range(5)) ** 3
        ac = AssignmentCollection(
            [Assignment(g.center(), t + 1)], [Assignment(t, expensive)]
        )
        out = rematerialize(ac.all_assignments, max_cost=2)
        assert any(not a.is_field_store for a in out)

    def test_value_preserved(self):
        ac = _chain_kernel(4)
        out = rematerialize(ac.all_assignments, max_cost=10, max_uses=10,
                            leaf_operands_only=False)
        # reconstruct and compare final expression
        import sympy

        def final(assignments):
            table = {}
            for a in assignments:
                if a.is_field_store:
                    return a.rhs.xreplace(table)
                table[a.lhs] = a.rhs.xreplace(table)

        assert sympy.expand(final(out) - final(ac.all_assignments)) == 0


class TestFences:
    def test_windows(self):
        plan = insert_fences([None] * 10, 4)  # content irrelevant for splitting
        assert plan.windows == [(0, 4), (4, 8), (8, 10)]

    def test_no_fences(self):
        plan = insert_fences([None] * 10, None)
        assert plan.count == 0 and plan.windows == [(0, 10)]


class TestRegisterModelAndTuning:
    @pytest.fixture(scope="class")
    def kernel(self):
        ac = _tree_kernel(5)
        return create_kernel(ac)

    def test_fences_reduce_demand(self, kernel):
        order = kernel.ac.all_assignments
        no_fence = estimate_registers(order)
        fenced = estimate_registers(order, insert_fences(order, 8))
        assert fenced.demand_registers <= no_fence.demand_registers

    def test_spill_detection(self):
        ac = _chain_kernel(150)  # 150 live doubles -> 300+ registers
        est = estimate_registers(ac.all_assignments)
        assert est.spills
        assert est.allocated_registers == TESLA_P100.max_registers_per_thread

    def test_occupancy_increases_with_fewer_registers(self, kernel):
        seq_none = apply_sequence(kernel, TransformationSequence())
        seq_all = apply_sequence(
            kernel,
            TransformationSequence(use_remat=True, use_scheduling=True, fence_interval=16),
        )
        assert seq_all.registers.demand_registers <= seq_none.registers.demand_registers
        assert seq_all.model.occupancy >= seq_none.model.occupancy
        assert seq_all.time_per_lup_ns <= seq_none.time_per_lup_ns

    def test_evolutionary_tuner_beats_baseline(self, kernel):
        baseline = apply_sequence(kernel, TransformationSequence())
        best = evolutionary_tune(kernel, population=8, generations=5, seed=3)
        assert best.time_per_lup_ns <= baseline.time_per_lup_ns

    def test_evolutionary_deterministic(self, kernel):
        a = evolutionary_tune(kernel, population=6, generations=3, seed=11)
        b = evolutionary_tune(kernel, population=6, generations=3, seed=11)
        assert a.sequence == b.sequence
