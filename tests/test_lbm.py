"""Lattice Boltzmann extension: lattices, kernels, physics validation."""

import numpy as np
import pytest
import sympy as sp

from repro.lbm import (
    D2Q9,
    D3Q19,
    LBMethod,
    LBMSimulation,
    create_lbm_update,
    equilibrium_pdfs,
)


class TestLattices:
    @pytest.mark.parametrize("lat", [D2Q9, D3Q19], ids=lambda lat: lat.name)
    def test_moments(self, lat):
        lat.validate()  # weights sum, zero first moment, cs² second moment

    @pytest.mark.parametrize("lat", [D2Q9, D3Q19], ids=lambda lat: lat.name)
    def test_opposites(self, lat):
        for i in range(lat.q):
            j = lat.opposite(i)
            assert lat.opposite(j) == i
            assert all(
                a == -b for a, b in zip(lat.velocities[i], lat.velocities[j])
            )

    def test_q_counts(self):
        assert D2Q9.q == 9 and D3Q19.q == 19


class TestMethod:
    def test_equilibrium_moments(self):
        """Σfeq = ρ and Σ c feq = ρu for symbolic ρ, u."""
        m = LBMethod()
        rho = sp.Symbol("rho")
        u = [sp.Symbol("ux"), sp.Symbol("uy")]
        feqs = [m.equilibrium(i, rho, u) for i in range(9)]
        assert sp.expand(sp.Add(*feqs) - rho) == 0
        for d in range(2):
            mom = sp.Add(*[D2Q9.velocities[i][d] * feqs[i] for i in range(9)])
            assert sp.expand(mom - rho * u[d]) == 0

    def test_viscosity_formula(self):
        m = LBMethod(relaxation_rate=1.0)
        assert float(m.viscosity) == pytest.approx(1 / 6)
        m2 = LBMethod(relaxation_rate=2.0)
        assert float(m2.viscosity) == pytest.approx(0.0)

    def test_rest_equilibrium(self):
        eq = equilibrium_pdfs(LBMethod(), rho=1.0, u=(0, 0))
        assert eq[0] == pytest.approx(4 / 9)
        assert sum(eq) == pytest.approx(1.0)

    def test_update_collection_structure(self):
        ac, src, dst = create_lbm_update(LBMethod())
        assert len(ac.main_assignments) == 9
        assert src.index_shape == (9,) and dst.index_shape == (9,)
        assert ac.ghost_layers_required() == 1

    def test_kernel_generation_through_pipeline(self):
        """The LBM kernel goes through the same IR/backends as phase-field."""
        from repro.ir import create_kernel

        ac, _, _ = create_lbm_update(LBMethod(relaxation_rate=1.5))
        k = create_kernel(ac)
        oc = k.operation_count()
        assert oc.loads == 9 and oc.stores == 9
        assert oc.divs >= 1  # 1/rho

    def test_cuda_source_for_lbm(self):
        from repro.backends.cuda_backend import generate_cuda_source
        from repro.ir import create_kernel

        ac, _, _ = create_lbm_update(LBMethod())
        src = generate_cuda_source(create_kernel(ac)).source
        assert "__global__ void kernel_lbm_d2q9" in src


class TestPhysics:
    def test_uniform_state_is_fixed_point(self):
        sim = LBMSimulation(LBMethod(relaxation_rate=1.2), (8, 8))
        before = sim.pdf.copy()
        sim.step(5)
        np.testing.assert_allclose(sim.pdf, before, atol=1e-14)

    def test_mass_conservation_periodic(self):
        sim = LBMSimulation(LBMethod(relaxation_rate=1.7), (12, 10))
        rng = np.random.default_rng(0)
        u0 = 0.02 * rng.standard_normal((12, 10, 2))
        sim.set_velocity(u0)
        m0 = sim.total_mass()
        sim.step(50)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_momentum_conservation_periodic(self):
        sim = LBMSimulation(LBMethod(relaxation_rate=1.3), (10, 10))
        u0 = np.zeros((10, 10, 2))
        u0[..., 0] = 0.01
        sim.set_velocity(u0)
        sim.step(40)
        u = sim.velocity()
        np.testing.assert_allclose(u[..., 0].mean(), 0.01, rtol=1e-10)

    def test_poiseuille_profile(self):
        """Body-force channel flow matches the analytic parabola (<1 %)."""
        g = 1e-6
        method = LBMethod(relaxation_rate=1.0, force=(0.0, g))
        sim = LBMSimulation(method, (21, 4), walls=[(0, -1), (0, +1)])
        sim.step(3000)
        u = sim.velocity()[..., 1].mean(axis=1)
        nu = float(method.viscosity)
        y = np.arange(21) + 0.5
        analytic = g / (2 * nu) * y * (21.0 - y)
        assert np.abs(u - analytic).max() / analytic.max() < 0.01

    def test_shear_wave_decay_rate(self):
        """A sinusoidal shear wave decays with exp(−ν k² t)."""
        n = 32
        method = LBMethod(relaxation_rate=1.4)
        sim = LBMSimulation(method, (n, n))
        x = (np.arange(n) + 0.5) / n
        u0 = np.zeros((n, n, 2))
        amp = 1e-3
        u0[..., 1] = amp * np.sin(2 * np.pi * x)[:, None]
        sim.set_velocity(u0)
        steps = 200
        sim.step(steps)
        u = sim.velocity()[..., 1]
        amp_now = np.abs(np.fft.fft(u.mean(axis=1))[1]) * 2 / n
        nu = float(method.viscosity)
        k = 2 * np.pi / n
        expected = amp * np.exp(-nu * k**2 * steps)
        assert amp_now == pytest.approx(expected, rel=0.02)

    def test_c_backend_matches_numpy(self):
        from repro.backends.c_backend import c_compiler_available

        if not c_compiler_available():
            pytest.skip("no C compiler")
        rng = np.random.default_rng(1)
        u0 = 0.01 * rng.standard_normal((10, 8, 2))
        results = {}
        for backend in ("numpy", "c"):
            sim = LBMSimulation(LBMethod(relaxation_rate=1.6), (10, 8), backend=backend)
            sim.set_velocity(u0)
            sim.step(10)
            results[backend] = sim.pdf.copy()
        np.testing.assert_array_equal(results["c"], results["numpy"])

    def test_d3q19_runs(self):
        sim = LBMSimulation(LBMethod(lattice=D3Q19, relaxation_rate=1.2), (6, 6, 6))
        m0 = sim.total_mass()
        sim.step(5)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_wall_shape_validation(self):
        with pytest.raises(ValueError, match="2D shape|needs"):
            LBMSimulation(LBMethod(), (8, 8, 8))
