"""Persistent kernel disk cache: keying, atomic publication, concurrency.

The ISSUE-10 soundness claims under test:

* the cache key folds compiler identity + flags + codegen revision, so no
  input that could change the binary can silently reuse a stale one;
* ``kernel.so`` only ever appears via an atomic rename — a failed or
  killed build can never leave a loadable partial artifact;
* N processes racing on one kernel set compile it exactly once (flock +
  ``builds.jsonl`` sentinel) and produce bit-identical results;
* a worker killed mid-compile releases the lock (kernel-side flock
  semantics) and the next builder recovers cleanly.
"""

import multiprocessing as mp
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backends.c_backend import c_compiler_available
from repro.profiling import clear_kernel_cache, kernel_fingerprint
from repro.profiling.diskcache import (
    CACHE_SCHEMA,
    KernelDiskCache,
    cache_key,
    cache_root,
    codegen_revision,
    compiler_identity,
    disk_cache_stats,
    reset_disk_cache_stats,
)

needs_cc = pytest.mark.skipif(
    not c_compiler_available(), reason="no C compiler available"
)
needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork start method"
)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A private cache root for this test, selected via the env override."""
    root = tmp_path / "kernel-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    reset_disk_cache_stats()
    yield root
    reset_disk_cache_stats()


def _touch_builder(payload: bytes = b"artifact-bytes"):
    def build(tmp_path: Path):
        tmp_path.write_bytes(payload)

    return build


class TestCacheRoot:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert cache_root() == tmp_path / "override"

    def test_xdg_default_is_per_user(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert cache_root() == tmp_path / "xdg" / "repro" / "kernels"

    def test_home_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert cache_root() == tmp_path / ".cache" / "repro" / "kernels"


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("abc", flags=("-O3",)) == cache_key("abc", flags=("-O3",))

    def test_content_digest_changes_key(self):
        assert cache_key("abc") != cache_key("abd")

    def test_flags_change_key(self):
        assert cache_key("abc", flags=("-O3",)) != cache_key("abc", flags=("-O2",))

    def test_backend_changes_key(self):
        assert cache_key("abc", backend="c") != cache_key("abc", backend="c-bench")

    def test_compiler_identity_changes_key(self):
        # /bin/echo happily answers --version with a different banner than cc
        assert cache_key("abc") != cache_key("abc", cc="/bin/echo")

    def test_codegen_revision_changes_key(self, monkeypatch):
        base = cache_key("abc")
        import repro.profiling.diskcache as dc

        monkeypatch.setattr(dc, "_REVISION", "f" * 16)
        assert cache_key("abc") != base

    def test_compiler_identity_handles_missing_binary(self):
        ident = compiler_identity("/no/such/compiler-xyz")
        assert ident["version"] == "unavailable"

    def test_codegen_revision_stable(self):
        assert codegen_revision() == codegen_revision()
        assert len(codegen_revision()) == 16

    def test_fingerprint_survives_analytic_coordinates(self):
        # kernel_fingerprint hashes srepr(); sympy's ReprPrinter dispatches on
        # class NAME, so our CoordinateSymbol used to be routed to the
        # sympy.vector printer (which reads .coord_sys) and crashed — meaning
        # any kernel with analytic x-dependence could not take the disk tier
        import sympy as sp

        from repro.profiling.cache import kernel_fingerprint
        from repro.symbolic import coord

        assert sp.srepr(coord(0) * 2) == "Mul(Integer(2), CoordinateSymbol(0))"

        from repro.discretization import (
            FiniteDifferenceDiscretization,
            discretize_system,
        )
        from repro.ir import create_kernel
        from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad

        f = Field("f", 2)
        eq = EvolutionEquation(f.center(), coord(0) ** 2 * div(grad(f.center())))
        ac = discretize_system(
            PDESystem([eq], name="coord_fp"),
            Field("f_dst", 2),
            FiniteDifferenceDiscretization(dim=2),
        )
        k = create_kernel(ac)
        assert kernel_fingerprint(k) == kernel_fingerprint(k)


class TestGetOrBuild:
    def test_build_publishes_and_hits(self, cache_dir):
        cache = KernelDiskCache()
        key = cache_key("content-1")
        path, hit = cache.get_or_build(
            key, _touch_builder(), source="int x;", meta={"kernel": "k"}
        )
        assert not hit and path.read_bytes() == b"artifact-bytes"
        path2, hit2 = cache.get_or_build(key, _touch_builder())
        assert hit2 and path2 == path
        assert cache.build_count(key) == 1
        stats = disk_cache_stats()
        assert (stats.hits, stats.misses, stats.builds) == (1, 1, 1)

    def test_source_and_meta_stored(self, cache_dir):
        cache = KernelDiskCache()
        key = cache_key("content-2")
        cache.get_or_build(key, _touch_builder(), source="int y;", meta={"a": 1})
        assert cache.load_source(key) == "int y;"
        meta = cache.load_meta(key)
        assert meta["schema"] == CACHE_SCHEMA
        assert meta["a"] == 1 and meta["key"] == key
        assert meta["size_bytes"] == len(b"artifact-bytes")

    def test_failed_build_publishes_nothing(self, cache_dir):
        cache = KernelDiskCache()
        key = cache_key("content-3")

        def bad_build(tmp_path: Path):
            tmp_path.write_bytes(b"partial")
            raise RuntimeError("compiler exploded")

        with pytest.raises(RuntimeError, match="compiler exploded"):
            cache.get_or_build(key, bad_build)
        assert cache.lookup(key) is None
        # the half-written temp must not survive either
        assert not list(cache.entry_dir(key).glob(".tmp.*"))
        # and a later build still works
        _, hit = cache.get_or_build(key, _touch_builder())
        assert not hit and cache.lookup(key) is not None

    def test_builder_without_artifact_rejected(self, cache_dir):
        cache = KernelDiskCache()
        with pytest.raises(RuntimeError, match="no artifact"):
            cache.get_or_build(cache_key("content-4"), lambda tmp: None)

    def test_purge_and_bytes(self, cache_dir):
        cache = KernelDiskCache()
        for i in range(3):
            cache.get_or_build(cache_key(f"c{i}"), _touch_builder())
        assert len(cache.entries()) == 3
        assert cache.total_bytes() == 3 * len(b"artifact-bytes")
        assert cache.purge() == 3
        assert cache.entries() == [] and cache.total_bytes() == 0

    def test_clear_kernel_cache_disk_tier(self, cache_dir):
        cache = KernelDiskCache()
        cache.get_or_build(cache_key("c-clear"), _touch_builder())
        assert len(cache.entries()) == 1
        clear_kernel_cache(disk=True)
        assert cache.entries() == []
        stats = disk_cache_stats()
        assert (stats.hits, stats.misses, stats.builds) == (0, 0, 0)


@needs_cc
class TestCompilerFallback:
    def test_openmp_failure_falls_back_to_plain(self, cache_dir, tmp_path, monkeypatch):
        # a cc wrapper that refuses -fopenmp: the retry must still publish
        wrapper = tmp_path / "cc_no_omp.sh"
        wrapper.write_text(
            '#!/bin/sh\nfor a in "$@"; do\n'
            '  [ "$a" = "-fopenmp" ] && { echo "no openmp here" >&2; exit 1; }\n'
            "done\nexec cc \"$@\"\n"
        )
        wrapper.chmod(0o755)
        monkeypatch.setenv("CC", str(wrapper))
        from repro.backends.c_backend import _build_shared_object

        so = _build_shared_object("int the_answer(void) { return 42; }", "the_answer")
        assert so.exists()
        import ctypes

        assert ctypes.CDLL(str(so)).the_answer() == 42

    def test_total_compile_failure_leaves_no_artifact(self, cache_dir, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        from repro.backends.c_backend import _build_shared_object

        with pytest.raises(RuntimeError, match="C compilation failed"):
            _build_shared_object("int f(void) { return 0; }", "f")
        cache = KernelDiskCache()
        for entry in cache.entries():
            assert not (entry / "kernel.so").exists()
            assert not list(entry.glob(".tmp.*"))


def _heat_kernel():
    from repro.discretization import FiniteDifferenceDiscretization, discretize_system
    from repro.ir import KernelConfig, create_kernel
    from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad

    f = Field("f", 2)
    f_dst = Field("f_dst", 2)
    eq = EvolutionEquation(f.center(), div(grad(f.center())))
    system = PDESystem([eq], name="heat_race")
    ac = discretize_system(system, f_dst, FiniteDifferenceDiscretization(dim=2))
    return create_kernel(
        ac, KernelConfig(parameter_values={"dt": 0.1, "dx_0": 1.0, "dx_1": 1.0})
    )


def _run_heat(compiled, kernel):
    from repro.backends import create_arrays

    arrays = create_arrays(kernel.fields, (16, 16), kernel.ghost_layers)
    rng = np.random.default_rng(7)
    for name in arrays:
        arrays[name][...] = rng.random(arrays[name].shape)
    compiled(arrays)
    import hashlib

    return hashlib.sha256(arrays["f_dst"].tobytes()).hexdigest()


def _race_worker(cache_root_path, result_queue):
    os.environ["REPRO_CACHE_DIR"] = str(cache_root_path)
    clear_kernel_cache()  # forked copy of the parent's memory cache
    reset_disk_cache_stats()
    try:
        from repro.profiling import compile_cached

        kernel = _heat_kernel()
        compiled = compile_cached(kernel, "c")
        stats = disk_cache_stats()
        result_queue.put(
            ("ok", os.getpid(), _run_heat(compiled, kernel), stats.builds)
        )
    except Exception as exc:  # pragma: no cover - diagnostic path
        result_queue.put(("error", os.getpid(), repr(exc), -1))


@needs_cc
@needs_fork
class TestMultiProcess:
    def test_race_compiles_exactly_once_bit_identical(self, cache_dir, tmp_path):
        """Satellite 4: >=4 workers race; one build; results match cold run."""
        # the cold single-process reference uses its own private cache
        ref_root = tmp_path / "ref-cache"
        ctx = mp.get_context("fork")
        ref_q = ctx.Queue()
        ref = ctx.Process(target=_race_worker, args=(ref_root, ref_q))
        ref.start()
        kind, _, ref_digest, ref_builds = ref_q.get(timeout=300)
        ref.join(timeout=60)
        assert kind == "ok" and ref_builds >= 1

        queue = ctx.Queue()
        workers = [
            ctx.Process(target=_race_worker, args=(cache_dir, queue))
            for _ in range(4)
        ]
        for w in workers:
            w.start()
        results = [queue.get(timeout=300) for _ in workers]
        for w in workers:
            w.join(timeout=60)
        assert all(kind == "ok" for kind, *_ in results), results
        digests = {digest for _, _, digest, _ in results}
        assert digests == {ref_digest}  # bit-identical across every process
        # exactly-once: the builds.jsonl sentinels across all entries sum to
        # the number of distinct kernels, regardless of how many racers ran
        cache = KernelDiskCache(cache_dir)
        entries = cache.entries()
        assert entries, "race published no cache entries"
        for entry in entries:
            assert cache.build_count(entry.name) == 1
            assert (entry / "kernel.so").exists()
            assert not list(entry.glob(".tmp.*"))
        total_builds = sum(builds for *_, builds in results)
        assert total_builds == len(entries)

    def test_killed_builder_releases_lock(self, cache_dir):
        """A SIGKILLed compile never blocks or corrupts the entry."""
        cache = KernelDiskCache()
        key = cache_key("kill-me")
        entry = cache.entry_dir(key)
        ctx = mp.get_context("fork")
        started = ctx.Event()

        def stuck_builder_proc():
            def stuck(tmp_path: Path):
                tmp_path.write_bytes(b"partial garbage")
                started.set()
                time.sleep(120)

            KernelDiskCache().get_or_build(key, stuck)

        victim = ctx.Process(target=stuck_builder_proc)
        victim.start()
        assert started.wait(timeout=60), "stuck builder never started"
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=60)

        # the kernel released the dead holder's flock: a new builder with a
        # short deadline must acquire it, sweep the orphan temp and publish
        path, hit = KernelDiskCache(lock_timeout=30.0).get_or_build(
            key, _touch_builder(b"good artifact")
        )
        assert not hit and path.read_bytes() == b"good artifact"
        assert cache.build_count(key) == 1
        assert not list(entry.glob(".tmp.*"))


@needs_cc
class TestCompileCKernelDiskTier:
    def test_second_process_equivalent_hit_skips_codegen(self, cache_dir):
        """compile_c_kernel round-trips through the disk tier."""
        from repro.backends.c_backend import compile_c_kernel

        kernel = _heat_kernel()
        reset_disk_cache_stats()
        cold = compile_c_kernel(kernel)
        assert disk_cache_stats().builds == 1
        # simulate a fresh process: drop the memory tier, keep the disk tier
        clear_kernel_cache()
        reset_disk_cache_stats()
        warm = compile_c_kernel(_heat_kernel())
        stats = disk_cache_stats()
        assert stats.builds == 0 and stats.hits >= 1
        assert warm.source == cold.source  # served from the stored kernel.c
        assert _run_heat(warm, kernel) == _run_heat(cold, kernel)

    def test_meta_records_provenance(self, cache_dir):
        from repro.backends.c_backend import _BASE_FLAGS, compile_c_kernel

        kernel = _heat_kernel()
        compile_c_kernel(kernel)
        cache = KernelDiskCache()
        key = cache_key(kernel_fingerprint(kernel), flags=_BASE_FLAGS, backend="c")
        meta = cache.load_meta(key)
        assert meta["kernel"] == kernel.name
        assert meta["fingerprint"] == kernel_fingerprint(kernel)
        assert meta["codegen_revision"] == codegen_revision()
        assert meta["compiler"]["cc"] == os.environ.get("CC", "cc")
