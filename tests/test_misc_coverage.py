"""Coverage for smaller code paths: typing, approximations, operators,
CUDA restrictions, GPU model bounds, misc API behaviors."""

import numpy as np
import pytest
import sympy as sp

from repro.ir import (
    DOUBLE,
    INT64,
    create_kernel,
    fast_division,
    fast_rsqrt,
    fast_sqrt,
    infer_types,
    insert_approximations,
)
from repro.symbolic import (
    Assignment,
    AssignmentCollection,
    Diff,
    Divergence,
    Field,
    diff,
    div,
    random_uniform,
)
from repro.symbolic.random import SEED, TIME_STEP


class TestTypeInference:
    def test_defaults_and_integers(self):
        f, g = Field("tf", 2), Field("tg", 2)
        amp = sp.Symbol("amp")
        ac = AssignmentCollection(
            [Assignment(g.center(), amp * random_uniform(stream=0) + f.center())]
        )
        types = infer_types(ac)
        assert types[f.center()] is DOUBLE
        assert types[amp] is DOUBLE
        assert types[TIME_STEP] is INT64
        assert types[SEED] is INT64

    def test_float_field_dtype(self):
        f = Field("ff32", 2, dtype="float")
        g = Field("fg32", 2, dtype="float")
        ac = AssignmentCollection([Assignment(g.center(), f.center())])
        types = infer_types(ac)
        assert types[f.center()].numpy_name == "float32"

    def test_mixed_dimensionality_rejected(self):
        f2, f3 = Field("mx2", 2), Field("mx3", 3)
        ac = AssignmentCollection(
            [Assignment(f2.center(), 1.0), Assignment(f3.center(), 1.0)]
        )
        with pytest.raises(ValueError, match="dimensionality"):
            create_kernel(ac)


class TestApproximations:
    def test_pure_reciprocal(self):
        f, g = Field("af", 2), Field("ag", 2)
        ac = AssignmentCollection([Assignment(g.center(), 1 / f.center())])
        out = insert_approximations(ac, ("division",))
        assert out.main_assignments[0].rhs.atoms(fast_division)

    def test_rational_constant_division(self):
        f, g = Field("af2", 2), Field("ag2", 2)
        ac = AssignmentCollection([Assignment(g.center(), sp.Rational(2, 3) * f.center())])
        out = insert_approximations(ac, ("division",))
        (fd,) = out.main_assignments[0].rhs.atoms(fast_division)
        assert fd.args[1] == 3

    def test_half_power_rewrites(self):
        f, g = Field("af3", 2), Field("ag3", 2)
        ac = AssignmentCollection([Assignment(g.center(), f.center() ** sp.Rational(3, 2))])
        out = insert_approximations(ac, ("sqrt",))
        assert out.main_assignments[0].rhs.atoms(fast_sqrt)

    def test_unknown_kind_rejected(self):
        f, g = Field("af4", 2), Field("ag4", 2)
        ac = AssignmentCollection([Assignment(g.center(), f.center())])
        with pytest.raises(ValueError, match="unknown approximation"):
            insert_approximations(ac, ("cbrt",))

    def test_numeric_equivalence(self):
        """fast nodes evalf to the exact values (they only change backends)."""
        x = sp.Float(2.25)
        assert float(fast_sqrt(x)) == pytest.approx(1.5)
        assert float(fast_rsqrt(sp.Float(4.0))) == pytest.approx(0.5)
        assert float(fast_division(sp.Float(1.0), sp.Float(8.0))) == pytest.approx(0.125)


class TestOperators:
    def test_divergence_as_diff_sum(self):
        f = Field("dvf", 2)
        d = div([f.center(), 2 * f.center()])
        expanded = d.as_diff_sum()
        assert expanded == Diff(f.center(), 0) + Diff(2 * f.center(), 1)

    def test_divergence_accepts_matrix(self):
        from repro.symbolic import grad

        f = Field("dvf2", 2)
        assert isinstance(div(grad(f.center())), Divergence)

    def test_nested_diff_helper(self):
        f = Field("dvf3", 3)
        d = diff(f.center(), 0, 1, 2)
        assert d.axis == 2 and d.arg.axis == 1 and d.arg.arg.axis == 0

    def test_str_forms(self):
        f = Field("dvf4", 2)
        assert "D(" in str(Diff(f.center(), 0))
        assert "Div(" in str(div([f.center(), f.center()]))


class TestCudaRestrictions:
    def test_z_loop_rejects_flux_kernels(self):
        from repro.backends.cuda_backend import generate_cuda_source
        from repro.discretization import (
            FiniteDifferenceDiscretization,
            discretize_system,
        )
        from repro.symbolic import EvolutionEquation, PDESystem, div as _div, grad

        f = Field("zf", 3)
        f_dst = Field("zf_dst", 3)
        eq = EvolutionEquation(f.center(), _div(grad(f.center())))
        split = discretize_system(
            PDESystem([eq], name="zheat"),
            f_dst,
            FiniteDifferenceDiscretization(dim=3),
            variant="split",
        )
        k = create_kernel(split.flux_kernel)
        with pytest.raises(ValueError, match="z_loop"):
            generate_cuda_source(k, mapping="z_loop")


class TestGPUModelBounds:
    def test_occupancy_in_unit_interval(self):
        from repro.gpu import GPUKernelModel, RegisterEstimate

        f, g = Field("gmf", 2), Field("gmg", 2)
        ac = AssignmentCollection([Assignment(g.center(), f.center() + 1)])
        k = create_kernel(ac)
        for regs in (32, 64, 128, 255):
            est = RegisterEstimate(
                analysis_registers=regs,
                allocated_registers=regs,
                demand_registers=regs,
                spilled_registers=0,
                max_live=regs // 2,
            )
            m = GPUKernelModel(kernel=k, registers=est)
            assert 0.0 < m.occupancy <= 1.0
            assert 0.0 < m.efficiency <= 1.0

    def test_fewer_registers_never_slower(self):
        from repro.gpu import GPUKernelModel, RegisterEstimate

        f, g = Field("gmf2", 2), Field("gmg2", 2)
        ac = AssignmentCollection([Assignment(g.center(), f.center() ** 3 + 1)])
        k = create_kernel(ac)

        def t(regs, spilled=0):
            est = RegisterEstimate(regs, min(regs, 255), regs, spilled, regs // 2)
            return GPUKernelModel(kernel=k, registers=est).time_per_lup_ns()

        assert t(64) <= t(128) <= t(255) <= t(400, spilled=145)


class TestAssignmentMisc:
    def test_from_dict(self):
        f, g = Field("amf", 2), Field("amg", 2)
        ac = AssignmentCollection.from_dict({g.center(): f.center() + 1})
        assert len(ac.main_assignments) == 1

    def test_assignment_iteration_and_str(self):
        f, g = Field("amf2", 2), Field("amg2", 2)
        a = Assignment(g.center(), f.center())
        lhs, rhs = a
        assert lhs == g.center() and rhs == f.center()
        assert "<-" in str(a)

    def test_lhs_type_checked(self):
        with pytest.raises(TypeError, match="symbol"):
            Assignment(sp.Integer(3), sp.Integer(4))

    def test_inline_subexpressions_chained(self):
        f, g = Field("amf3", 2), Field("amg3", 2)
        x, y = sp.symbols("amx amy")
        ac = AssignmentCollection(
            [Assignment(g.center(), y + 1)],
            [Assignment(x, f.center() * 2), Assignment(y, x + 3)],
        )
        flat = ac.inline_subexpressions()
        assert flat.subexpressions == []
        assert sp.expand(flat.main_assignments[0].rhs - (2 * f.center() + 4)) == 0


class TestFieldAccessExtras:
    def test_at_offset_and_with_index(self):
        phi = Field("fax", 3, (4,))
        acc = phi.center(1)
        moved = acc.at_offset((1, 0, 0))
        assert moved.offsets == (1, 0, 0) and moved.index == (1,)
        reindexed = acc.with_index(2)
        assert reindexed.index == (2,)

    def test_offsets_arity_checked(self):
        phi = Field("fax2", 3)
        with pytest.raises(ValueError, match="offsets"):
            phi[1, 0]
