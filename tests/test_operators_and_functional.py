"""Tests for continuous operators and variational derivatives."""

import pytest
import sympy as sp

from repro.symbolic import (
    Diff,
    EnergyFunctional,
    Field,
    Transient,
    diff,
    div,
    expand_diff,
    functional_derivative,
    grad,
    gradient_norm,
    x_,
)
from repro.symbolic.operators import diff_depth


class TestDiff:
    def test_of_number_is_zero(self):
        assert Diff(5, 0) == 0
        assert Diff(sp.Rational(1, 2), 2) == 0

    def test_nested(self):
        f = Field("f", 2)
        d = diff(f.center(), 0, 1)
        assert isinstance(d, Diff)
        assert d.axis == 1
        assert isinstance(d.arg, Diff)
        assert d.arg.axis == 0

    def test_grad_dimension_from_field(self):
        f2 = Field("f2", 2)
        g = grad(f2.center())
        assert len(g) == 2

    def test_div_of_grad_depth(self):
        f = Field("f", 3)
        lap = div(grad(f.center()))
        assert diff_depth(lap) == 2

    def test_div_zero(self):
        assert div([0, 0, 0]) == 0

    def test_transient_requires_access(self):
        with pytest.raises(TypeError):
            Transient(sp.Symbol("a"))

    def test_gradient_norm_squared(self):
        f = Field("f", 2)
        gn2 = gradient_norm(f.center(), squared=True)
        assert gn2 == Diff(f.center(), 0) ** 2 + Diff(f.center(), 1) ** 2


class TestExpandDiff:
    def test_linearity(self):
        f, g = Field("f", 2), Field("g", 2)
        e = expand_diff(Diff(f.center() + 2 * g.center(), 0))
        assert e == Diff(f.center(), 0) + 2 * Diff(g.center(), 0)

    def test_product_rule(self):
        f, g = Field("f", 2), Field("g", 2)
        e = expand_diff(Diff(f.center() * g.center(), 1))
        expected = f.center() * Diff(g.center(), 1) + g.center() * Diff(f.center(), 1)
        assert sp.expand(e - expected) == 0

    def test_constant_is_zero(self):
        a = sp.Symbol("a")
        assert expand_diff(Diff(a**2 + 3, 0)) == 0

    def test_power_rule(self):
        f = Field("f", 2)
        e = expand_diff(Diff(f.center() ** 3, 0))
        assert sp.expand(e - 3 * f.center() ** 2 * Diff(f.center(), 0)) == 0

    def test_chain_rule_sqrt(self):
        f = Field("f", 2)
        e = expand_diff(Diff(sp.sqrt(f.center()), 0))
        assert sp.simplify(e - Diff(f.center(), 0) / (2 * sp.sqrt(f.center()))) == 0

    def test_coordinate_derivative(self):
        e = expand_diff(Diff(x_[0] ** 2, 0))
        assert e == 2 * x_[0] * Diff(x_[0], 0)


class TestFunctionalDerivative:
    def test_double_well_bulk(self):
        """δ/δφ of w φ²(1−φ)² has no divergence part."""
        phi = Field("phi", 3)
        w = sp.Symbol("w")
        c = phi.center()
        energy = w * c**2 * (1 - c) ** 2
        fd = functional_derivative(energy, c)
        assert not fd.atoms(Diff)
        assert sp.expand(fd - sp.diff(energy, c)) == 0

    def test_gradient_energy_gives_laplacian(self):
        """δ/δφ of κ/2 |∇φ|² = −κ ∇²φ (as nested Diff)."""
        phi = Field("phi", 3)
        kappa = sp.Symbol("kappa")
        c = phi.center()
        energy = kappa / 2 * gradient_norm(c, squared=True)
        fd = functional_derivative(energy, c)
        expected = -sp.Add(*[Diff(kappa * Diff(c, i), i) for i in range(3)])
        assert sp.expand(fd - expected) == 0

    def test_allen_cahn_full(self):
        """Standard Allen-Cahn functional reproduces textbook EL equation."""
        phi = Field("phi", 2)
        c = phi.center()
        kappa, w = sp.symbols("kappa w", positive=True)
        energy = kappa / 2 * gradient_norm(c, squared=True, dim=2) + w * c**2 * (1 - c) ** 2
        fd = functional_derivative(energy, c)
        bulk = fd.subs({Diff(kappa * Diff(c, i), i): 0 for i in range(2)})
        assert sp.expand(bulk - w * (2 * c - 6 * c**2 + 4 * c**3)) == 0

    def test_multiphase_coupling(self):
        """q_ab gradient energy couples distinct phase indices correctly."""
        phi = Field("phi", 2, (2,))
        a0, a1 = phi.center(0), phi.center(1)
        q = [a0 * Diff(a1, i) - a1 * Diff(a0, i) for i in range(2)]
        energy = sp.Add(*[qi**2 for qi in q])
        fd = functional_derivative(energy, a0)
        # bulk part: ∂/∂a0 Σ q_i² = Σ 2 q_i * Diff(a1, i)
        assert fd.atoms(Diff)
        # divergence part must carry the -a1 factor
        outer = [d for d in fd.atoms(Diff) if not isinstance(d.arg, (type(a0),))]
        assert outer

    def test_rejects_higher_derivatives_in_density(self):
        phi = Field("phi", 2)
        c = phi.center()
        with pytest.raises(ValueError):
            functional_derivative(diff(c, 0, 0), c)


class TestEnergyFunctional:
    def test_density_assembly(self):
        phi = Field("phi", 3, (2,))
        eps = sp.Symbol("epsilon", positive=True)
        a = gradient_norm(phi.center(0), squared=True)
        w = phi.center(0) * phi.center(1)
        F = EnergyFunctional(gradient_energy=a, potential=w, epsilon=eps)
        assert sp.expand(F.density - (eps * a + w / eps)) == 0

    def test_extra_terms(self):
        phi = Field("phi", 3, (2,))
        F = EnergyFunctional(potential=phi.center(0) ** 2)
        F.add_term(phi.center(1) ** 2)
        assert phi.center(1) ** 2 in F.density.args

    def test_variational_derivative_dispatch(self):
        phi = Field("phi", 3, (2,))
        c = phi.center(0)
        F = EnergyFunctional(potential=c**2, epsilon=sp.Integer(1))
        assert F.variational_derivative(c) == 2 * c
