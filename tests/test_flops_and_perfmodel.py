"""Operation counting (Table 1 machinery) and performance models."""

import numpy as np
import pytest
import sympy as sp

from repro.ir import KernelConfig, create_kernel, insert_approximations
from repro.perfmodel import (
    ECMModel,
    OperationCount,
    SKYLAKE_8174,
    HASWELL_2690V3,
    analyze_traffic,
    blocking_factor,
    count_operations,
    roofline,
)
from repro.symbolic import Assignment, AssignmentCollection, Field


def _count(expr) -> OperationCount:
    g = Field("g", 2)
    ac = AssignmentCollection([Assignment(g.center(), expr)])
    oc = count_operations(ac)
    oc.loads = oc.stores = 0  # focus on arithmetic here
    return oc


class TestCountingRules:
    def setup_method(self):
        self.f = Field("f", 2)
        self.x = self.f.center()
        self.y = self.f[1, 0]()

    def test_add_chain(self):
        assert _count(self.x + self.y + 3).adds == 2

    def test_mul_chain(self):
        assert _count(2 * self.x * self.y).muls == 2

    def test_single_division(self):
        oc = _count(self.x / self.y)
        assert oc.divs == 1 and oc.muls == 0

    def test_combined_denominator_single_div(self):
        """a/(b*c) is one division plus one multiply (compiler semantics)."""
        z = self.f[0, 1]()
        oc = _count(self.x / (self.y * z))
        assert oc.divs == 1
        assert oc.muls == 1

    def test_sqrt_and_rsqrt(self):
        assert _count(sp.sqrt(self.x)).sqrts == 1
        oc = _count(1 / sp.sqrt(self.x))
        assert oc.rsqrts == 1 and oc.divs == 0

    def test_rsqrt_in_product(self):
        oc = _count(self.y / sp.sqrt(self.x))
        assert oc.rsqrts == 1 and oc.divs == 0 and oc.muls == 1

    def test_integer_powers_binary_exponentiation(self):
        assert _count(self.x**2).muls == 1
        assert _count(self.x**3).muls == 2
        assert _count(self.x**4).muls == 2
        assert _count(self.x**8).muls == 3

    def test_negation_free(self):
        assert _count(-self.x).muls == 0

    def test_piecewise_counts_blends(self):
        expr = sp.Piecewise((self.x, self.y > 0), (2 * self.x, True))
        oc = _count(expr)
        assert oc.blends >= 1

    def test_normalization_formula_matches_paper(self):
        """norm = adds + muls + 16 divs + 10 sqrts + 2 rsqrts — verified
        against all eight columns of Table 1."""
        paper_rows = [
            # (adds, muls, divs, sqrts, rsqrts, expected)
            (542, 788, 19, 42, 36, 2126),
            (256 + 75, 389 + 90, 6 + 11, 21, 18, 1328),
            (334, 526, 9, 0, 0, 1004),
            (66 + 202, 124 + 282, 9, 0, 0, 818),
            (293, 488, 18, 6, 24, 1177),
            (142 + 26, 248 + 46, 15, 3, 12, 756),
            (1087, 2081, 50, 0, 0, 3968),
            (364 + 368, 792 + 557, 32, 0, 0, 2593),
        ]
        for adds, muls, divs, sqrts, rsqrts, expected in paper_rows:
            oc = OperationCount(adds=adds, muls=muls, divs=divs, sqrts=sqrts, rsqrts=rsqrts)
            assert oc.normalized_flops() == expected

    def test_fast_ops_cheaper(self):
        f, g = Field("f", 2), Field("g", 2)
        ac = AssignmentCollection([Assignment(g.center(), 1 / f.center())])
        exact = count_operations(ac).normalized_flops()
        approx = count_operations(insert_approximations(ac)).normalized_flops()
        assert approx < exact

    def test_addition_of_counts(self):
        a = OperationCount(adds=1, loads=2)
        b = OperationCount(muls=3, stores=1)
        c = a + b
        assert (c.adds, c.muls, c.loads, c.stores) == (1, 3, 2, 1)


def _heat_kernel_3d():
    from repro.discretization import FiniteDifferenceDiscretization, discretize_system
    from repro.symbolic import EvolutionEquation, PDESystem, div, grad

    f = Field("f", 3)
    f_dst = Field("f_dst", 3)
    eq = EvolutionEquation(f.center(), div(grad(f.center())))
    ac = discretize_system(
        PDESystem([eq], name="heat_pm"), f_dst, FiniteDifferenceDiscretization(dim=3)
    )
    return create_kernel(ac, KernelConfig(parameter_values={"dt": 0.1, "dx_0": 1, "dx_1": 1, "dx_2": 1}))


class TestLayerConditions:
    def test_traffic_decreases_with_cache(self):
        k = _heat_kernel_3d()
        t = analyze_traffic(k, (60, 60, 60))
        assert t.load_bytes_plane < t.load_bytes_row <= t.load_bytes_none
        assert t.load_bytes(10**9) == t.load_bytes_plane
        assert t.load_bytes(0) == t.load_bytes_none

    def test_store_write_allocate(self):
        k = _heat_kernel_3d()
        t = analyze_traffic(k, (60, 60, 60))
        assert t.total_bytes(10**9) == t.load_bytes_plane + 2 * t.store_bytes
        assert t.total_bytes(10**9, write_allocate=False) == t.load_bytes_plane + t.store_bytes

    def test_seven_point_stencil_geometry(self):
        k = _heat_kernel_3d()
        t = analyze_traffic(k, (60, 60, 60))
        ft = {f.name: f for f in t.fields}
        assert ft["f"].n_planes == 3      # offsets -1, 0, +1 on the outer axis
        assert ft["f"].n_rows == 5        # (0,0), (±1,0), (0,±1)
        assert ft["f_dst"].is_store

    def test_blocking_factor_scales_with_cache(self):
        k = _heat_kernel_3d()
        small = blocking_factor(k, 256 * 1024)
        large = blocking_factor(k, 1024 * 1024)
        assert large == pytest.approx(2 * small, rel=0.1)
        assert large > 60  # heat stencil is lighter than the µ kernel


class TestECM:
    def test_compute_vs_memory_bound_classification(self):
        k = _heat_kernel_3d()
        ecm = ECMModel(SKYLAKE_8174)
        pred = ecm.predict(k, (60, 60, 60))
        # 7-point stencil: few flops, memory dominated
        assert not pred.is_compute_bound

    def test_memory_bound_kernel_saturates(self):
        k = _heat_kernel_3d()
        pred = ECMModel(SKYLAKE_8174).predict(k, (60, 60, 60))
        per_core_1 = pred.mlups_per_core(1)
        per_core_24 = pred.mlups_per_core(24)
        assert per_core_24 < per_core_1
        # aggregate rate must still grow or saturate, never drop
        assert pred.mlups(24) >= pred.mlups(12) * 0.99

    def test_single_core_rate_positive_and_sane(self):
        k = _heat_kernel_3d()
        pred = ECMModel(SKYLAKE_8174).predict(k, (60, 60, 60))
        assert 10 < pred.mlups_single_core() < 10000

    def test_haswell_slower_than_skylake(self):
        k = _heat_kernel_3d()
        skl = ECMModel(SKYLAKE_8174).predict(k, (60, 60, 60))
        hsw = ECMModel(HASWELL_2690V3).predict(k, (60, 60, 60))
        assert hsw.mlups(12) < skl.mlups(24)

    def test_str_contains_decomposition(self):
        k = _heat_kernel_3d()
        pred = ECMModel(SKYLAKE_8174).predict(k, (60, 60, 60))
        assert "cy/CL" in str(pred)


class TestRoofline:
    def test_memory_bound_stencil(self):
        k = _heat_kernel_3d()
        pt = roofline(k, SKYLAKE_8174, (60, 60, 60))
        assert pt.bound == "memory"
        assert pt.attainable_mflops < pt.peak_mflops

    def test_intensity_positive(self):
        k = _heat_kernel_3d()
        pt = roofline(k, SKYLAKE_8174, (60, 60, 60))
        assert pt.intensity_flop_per_byte > 0
