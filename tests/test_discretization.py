"""Tests for the finite-difference discretization layer.

Includes a literal check of the paper's Eq. (11) staggered example and
order-of-accuracy verification against analytic functions.
"""

import numpy as np
import pytest
import sympy as sp

from repro.symbolic import (
    Diff,
    EvolutionEquation,
    Field,
    FieldAccess,
    PDESystem,
    div,
    dt,
    grad,
    spacing,
    transient,
    x_,
)
from repro.discretization import (
    FiniteDifferenceDiscretization,
    FluxCollector,
    discretize_system,
)


def evaluate_stencil(expr, sample, h, index_map=None):
    """Numerically evaluate a stencil expression.

    *sample(field_name, offsets, index)* returns the grid value; spacing
    symbols are substituted with *h*.
    """
    subs = {}
    for acc in expr.atoms(FieldAccess):
        subs[acc] = sample(acc.field.name, acc.offsets, acc.index)
    for axis in range(3):
        subs[spacing(axis)] = h
    return float(expr.xreplace(subs))


class TestCentralDifferences:
    def test_first_derivative_order2(self):
        f = Field("f", 1)
        disc = FiniteDifferenceDiscretization(dim=1)
        stencil = disc(Diff(f.center(), 0))
        func = lambda x: np.sin(x)
        x0 = 0.4

        def sample(name, offsets, index):
            return func(x0 + float(offsets[0]) * h)

        errors = []
        for h in (0.1, 0.05):
            errors.append(abs(evaluate_stencil(stencil, sample, h) - np.cos(x0)))
        assert errors[1] / errors[0] == pytest.approx(0.25, rel=0.1)

    def test_first_derivative_order4(self):
        f = Field("f", 1)
        disc = FiniteDifferenceDiscretization(dim=1, order=4)
        stencil = disc(Diff(f.center(), 0))
        x0 = 0.4

        def sample(name, offsets, index):
            return np.sin(x0 + float(offsets[0]) * h)

        errors = []
        for h in (0.1, 0.05):
            errors.append(abs(evaluate_stencil(stencil, sample, h) - np.cos(x0)))
        assert errors[1] / errors[0] == pytest.approx(1 / 16, rel=0.2)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            FiniteDifferenceDiscretization(order=3)


class TestLaplacian:
    def test_laplacian_is_standard_stencil(self):
        """div(grad(f)) must reduce to the 5-point stencil in 2D."""
        f = Field("f", 2)
        disc = FiniteDifferenceDiscretization(dim=2)
        stencil = sp.simplify(disc(div(grad(f.center()))))
        h = spacing(0)
        expected = (
            f[1, 0]() + f[-1, 0]() - 2 * f.center()
        ) / h**2 + (f[0, 1]() + f[0, -1]() - 2 * f.center()) / spacing(1) ** 2
        assert sp.expand(stencil - expected) == 0

    def test_laplacian_convergence(self):
        f = Field("f", 2)
        disc = FiniteDifferenceDiscretization(dim=2)
        stencil = disc(div(grad(f.center())))
        x0, y0 = 0.3, 0.7
        func = lambda x, y: np.exp(x) * np.sin(y)
        exact = 0.0  # Δ(e^x sin y) = 0

        def sample(name, offsets, index):
            return func(x0 + float(offsets[0]) * h, y0 + float(offsets[1]) * h)

        h = 0.05
        val = evaluate_stencil(stencil, sample, h)
        assert abs(val - exact) < 1e-3


class TestPaperEquation11:
    """The staggered discretization of ∂x(p(x) ∂x f + ∂y f) — Eq. (11)."""

    def setup_method(self):
        self.f = Field("f", 2)
        self.p = sp.Function("p")(x_[0])
        self.disc = FiniteDifferenceDiscretization(dim=2)

    def test_right_staggered_value_matches_paper(self):
        f, p = self.f, self.p
        inner = p * Diff(f.center(), 0) + Diff(f.center(), 1)
        sr = self.disc.staggered_value(inner, axis=0, sign=+1)
        hx, hy = spacing(0), spacing(1)
        expected = p.subs(x_[0], x_[0] + hx / 2) * (f[1, 0]() - f[0, 0]()) / hx + sp.Rational(
            1, 2
        ) * (
            (f[0, 1]() - f[0, -1]()) / (2 * hy)
            + (f[1, 1]() - f[1, -1]()) / (2 * hy)
        )
        assert sp.expand(sr - expected) == 0

    def test_full_term_is_difference_of_staggered(self):
        f, p = self.f, self.p
        pde_rhs = Diff(p * Diff(f.center(), 0) + Diff(f.center(), 1), 0)
        stencil = self.disc(pde_rhs)
        hx = spacing(0)
        sr = self.disc.staggered_value(
            p * Diff(f.center(), 0) + Diff(f.center(), 1), 0, +1
        )
        sl = self.disc.staggered_value(
            p * Diff(f.center(), 0) + Diff(f.center(), 1), 0, -1
        )
        assert sp.expand(stencil - (sr - sl) / hx) == 0

    def test_variable_coefficient_laplacian_convergence(self):
        """∂x(p(x) ∂x f) with p=1+x², f=sin(x): check against analytic value."""
        f = Field("f", 1)
        disc = FiniteDifferenceDiscretization(dim=1)
        p_expr = 1 + x_[0] ** 2
        stencil = disc(Diff(p_expr * Diff(f.center(), 0), 0))
        x0 = 0.3
        exact = float(
            sp.diff((1 + sp.Symbol("x") ** 2) * sp.cos(sp.Symbol("x")), sp.Symbol("x")).subs(
                sp.Symbol("x"), x0
            )
        )

        def make_sample(h):
            def sample(name, offsets, index):
                return np.sin(x0 + float(offsets[0]) * h)

            return sample

        errs = []
        for h in (0.1, 0.05):
            subs = {x_[0]: x0}
            st = stencil.xreplace(subs)
            errs.append(abs(evaluate_stencil(st, make_sample(h), h) - exact))
        assert errs[1] / errs[0] == pytest.approx(0.25, rel=0.15)


class TestTransientResolution:
    def test_rhs_transient_becomes_dst_minus_src(self):
        phi = Field("phi", 3, (2,))
        phi_dst = Field("phi_dst", 3, (2,))
        disc = FiniteDifferenceDiscretization(dim=3, dst_map={phi: phi_dst})
        e = disc(transient(phi.center(0)) * 2)
        expected = 2 * (phi_dst.center(0) - phi.center(0)) / dt
        assert sp.expand(e - expected) == 0

    def test_missing_dst_map_raises(self):
        phi = Field("phi", 3, (2,))
        disc = FiniteDifferenceDiscretization(dim=3)
        with pytest.raises(ValueError, match="destination field"):
            disc(transient(phi.center(0)))


class TestFluxCollection:
    def test_fluxes_deduplicated(self):
        f = Field("f", 2)
        disc = FiniteDifferenceDiscretization(dim=2)
        fc = FluxCollector()
        expr = div(grad(f.center()))
        disc(expr, fc)
        disc(expr, fc)  # same fluxes again — must not grow
        assert len(fc) == 2  # one flux per axis

    def test_distinct_axes_distinct_slots(self):
        f = Field("f", 3)
        disc = FiniteDifferenceDiscretization(dim=3)
        fc = FluxCollector()
        disc(div(grad(f.center())), fc)
        axes = [axis for axis, _ in fc.entries]
        assert sorted(axes) == [0, 1, 2]


class TestDiscretizeSystem:
    def _heat_system(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        eq = EvolutionEquation(f.center(), div(grad(f.center())))
        return f, f_dst, PDESystem([eq], name="heat")

    def test_full_variant(self):
        f, f_dst, system = self._heat_system()
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(system, f_dst, disc, variant="full")
        assert len(ac.main_assignments) == 1
        (a,) = ac.main_assignments
        assert a.lhs.field == f_dst
        assert dt in a.rhs.free_symbols
        assert ac.ghost_layers_required() == 1

    def test_split_variant(self):
        f, f_dst, system = self._heat_system()
        disc = FiniteDifferenceDiscretization(dim=2)
        split = discretize_system(system, f_dst, disc, variant="split")
        flux_ac, main_ac = split
        assert split.flux_field.staggered
        assert split.flux_field.index_shape == (2,)
        assert len(flux_ac.main_assignments) == 2
        # main kernel reads the flux field at center and +1 offsets
        reads = {acc.offsets for acc in main_ac.field_reads if acc.field == split.flux_field}
        assert (0, 0) in reads
        assert (1, 0) in reads and (0, 1) in reads

    def test_split_and_full_agree_numerically(self):
        """Split kernels must compute the identical update."""
        f, f_dst, system = self._heat_system()
        disc = FiniteDifferenceDiscretization(dim=2)
        full = discretize_system(system, f_dst, disc, variant="full")
        split = discretize_system(system, f_dst, disc, variant="split")
        # inline flux assignments into the main kernel and compare
        flux_values = {
            a.lhs: a.rhs for a in split.flux_kernel.main_assignments
        }
        # build shifted flux values too
        shifted = {}
        for acc, rhs in flux_values.items():
            for axis in range(2):
                s = acc.shifted(axis, 1)
                shifted[s] = rhs.xreplace(
                    {
                        fa: fa.shifted(axis, 1)
                        for fa in rhs.atoms(FieldAccess)
                    }
                )
        table = {**flux_values, **shifted}
        (main_a,) = split.main_kernel.main_assignments
        recombined = main_a.rhs.xreplace(table)
        (full_a,) = full.main_assignments
        assert sp.expand(recombined - full_a.rhs) == 0

    def test_rejects_wrong_scheme(self):
        f, f_dst, system = self._heat_system()
        disc = FiniteDifferenceDiscretization(dim=2)
        with pytest.raises(NotImplementedError):
            discretize_system(system, f_dst, disc, scheme="rk4")

    def test_relaxation_divides_rhs(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        tau = sp.Symbol("tau", positive=True)
        eq = EvolutionEquation(f.center(), div(grad(f.center())), relaxation=tau)
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq]), f_dst, disc)
        (a,) = ac.main_assignments
        assert tau in a.rhs.free_symbols
