"""Distributed scaling observability (tier-1).

Covers the scaling layer end to end: rank-tagged tracers merging into one
multi-track Chrome trace, the per-(src, dst) communication matrix fed by
the ghost exchange, the λ imbalance factor and the comm-model closure in
``DistributedSolver.profile_report()``, the BENCH JSON schema +
``tools/bench_regress.py`` gate, the ``SimComm.recv`` deadlock timeout,
and the multi-rank metrics-export round-trip.
"""

import json

import numpy as np
import pytest

from repro.observability import (
    BenchSchemaError,
    BenchWriter,
    CommMatrix,
    MetricsRegistry,
    Tracer,
    comm_closure_rows,
    disable_tracing,
    export_merged_trace,
    find_sample,
    get_tracer,
    imbalance_factor,
    load_bench_document,
    merge_rank_traces,
    parse_prometheus,
    rank_tracer,
    reset_metrics,
    set_thread_tracer,
    validate_bench_document,
)
from repro.parallel import BlockForest, RankError, run_ranks
from repro.parallel.timeloop import DistributedSolver
from repro.pfm import GrandPotentialModel, make_two_phase_binary, planar_front
from repro.profiling import SolverProfiler


@pytest.fixture(autouse=True)
def _clean_observability_state():
    yield
    disable_tracing()
    reset_metrics()
    set_thread_tracer(None)


@pytest.fixture(scope="module")
def kernel_set():
    return GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()


def _init(global_shape, params):
    def init(offset, shape):
        full = planar_front(
            global_shape, params.n_phases, 0, 1,
            position=global_shape[0] / 2, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    return init


# -- rank-tagged tracers and trace merging -------------------------------------


class TestRankTracer:
    def test_thread_local_override(self):
        base = get_tracer()
        with rank_tracer(3) as tracer:
            assert get_tracer() is tracer
            assert tracer.rank == 3
        assert get_tracer() is base

    def test_rank_process_metadata(self):
        tracer = Tracer(rank=2)
        with tracer.span("work", category="runtime"):
            pass
        doc = tracer.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e for e in meta}
        assert names["process_name"]["args"]["name"] == "rank 2"
        assert names["process_name"]["pid"] == 2
        assert names["process_sort_index"]["args"]["sort_index"] == 2
        assert any(e["name"] == "thread_name" for e in meta)

    def test_merge_produces_one_track_per_rank(self):
        tracers = []
        for rank in range(3):
            t = Tracer(rank=rank)
            with t.span(f"op{rank}", category="runtime"):
                pass
            tracers.append(t)
        doc = merge_rank_traces(tracers)
        events = doc["traceEvents"]
        process_names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert process_names == {"rank 0", "rank 1", "rank 2"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1, 2}
        # shared clock: timestamps are relative to the earliest epoch
        assert min(e["ts"] for e in spans) >= 0.0
        # same category -> same tid on every rank
        assert len({e["tid"] for e in spans}) == 1

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_rank_traces([None, None])

    def test_export_merged_trace(self, tmp_path):
        t = Tracer(rank=0)
        with t.span("op", category="runtime"):
            pass
        path = export_merged_trace([t], tmp_path / "merged.json")
        doc = json.loads((tmp_path / "merged.json").read_text())
        assert path.endswith("merged.json")
        assert doc["traceEvents"]


# -- communication matrix ------------------------------------------------------


class TestCommMatrix:
    def test_accumulate_and_merge(self):
        a, b = CommMatrix(3), CommMatrix(3)
        a.add(0, 1, 100)
        a.add(0, 1, 100)
        b.add(1, 2, 50, messages=2)
        a.merge(b)
        assert a.total_bytes == 250
        assert a.total_messages == 4
        assert list(a.bytes_sent_per_rank()) == [200, 50, 0]
        assert a.merge(a) is a   # self-merge is a no-op
        assert a.total_bytes == 250

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            CommMatrix(2).merge(CommMatrix(3))

    def test_render_heatmap(self):
        m = CommMatrix(2)
        m.add(0, 1, 2048)
        text = m.render()
        assert "src\\dst" in text and "2.0" in text
        assert "byte imbalance" in text

    def test_imbalance_factor(self):
        assert imbalance_factor([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert imbalance_factor([2.0, 1.0, 1.0]) == pytest.approx(1.5)
        assert np.isnan(imbalance_factor([]))


# -- exchange split + closure --------------------------------------------------


class TestExchangeAccounting:
    def test_split_records_and_comm_matrix(self, kernel_set):
        """The exchange splits into pack/deliver/unpack and fills the matrix."""
        params = kernel_set.model.params
        forest = BlockForest((16, 16), (8, 8), periodic=True)

        def program(comm):
            solver = DistributedSolver(kernel_set, forest, comm=comm)
            solver.set_state_from(_init((16, 16), params))
            solver.step(2)
            return solver.profiler, solver.comm_matrix

        results = run_ranks(2, program)
        profiler, matrix = results[0]
        recs = profiler.records
        for part in ("pack", "deliver", "unpack"):
            assert f"exchange:phi_dst:{part}" in recs
        assert recs["exchange:phi_dst"].messages > 0
        assert recs["exchange:phi_dst"].bytes > 0
        assert recs["exchange:phi_dst:deliver"].messages == \
            recs["exchange:phi_dst"].messages
        # rank 0's matrix only holds its own sends
        assert matrix.bytes[0].sum() > 0
        assert matrix.bytes[1].sum() == 0
        merged = CommMatrix(2)
        for _, m in results:
            merged.merge(m)
        assert (merged.bytes > 0).sum() == 2   # 0->1 and 1->0

    def test_closure_rows(self, kernel_set):
        params = kernel_set.model.params
        forest = BlockForest((16, 16), (8, 8), periodic=True)
        solver = DistributedSolver(kernel_set, forest, comm=None)
        solver.set_state_from(_init((16, 16), params))
        solver.step(3)

        model = solver.default_step_model()
        assert model is not None and model.compute_mlups > 0
        rows = comm_closure_rows(model, solver.profiler, steps=3)
        assert rows[-1]["field"] == "total"
        assert rows[-1]["predicted_s"] > 0
        assert rows[-1]["ratio"] == pytest.approx(
            rows[-1]["measured_s"] / rows[-1]["predicted_s"]
        )
        fields = {r["field"] for r in rows}
        assert {"phi_dst", "mu_dst"} <= fields


# -- the acceptance scenario: 4 ranks, one merged trace, full report -----------


class TestDistributedRun:
    def test_four_rank_trace_and_report(self, kernel_set, tmp_path):
        params = kernel_set.model.params
        forest = BlockForest((16, 16), (4, 4), periodic=True)

        def program(comm):
            with rank_tracer(comm.rank) as tracer:
                solver = DistributedSolver(kernel_set, forest, comm=comm)
                solver.set_state_from(_init((16, 16), params))
                solver.step(2)
                report = solver.profile_report()
            return tracer, report

        results = run_ranks(4, program)
        path = tmp_path / "trace.json"
        export_merged_trace([t for t, _ in results], path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert names == {f"rank {r}" for r in range(4)}
        exchanges = [
            e for e in events
            if e["ph"] == "X" and e["name"] == "exchange:phi_dst"
        ]
        assert {e["pid"] for e in exchanges} == {0, 1, 2, 3}
        for e in exchanges:
            assert e["args"]["bytes"] > 0
            assert e["args"]["messages"] > 0

        report = results[0][1]
        assert "communication matrix" in report
        assert "load imbalance λ" in report
        assert "comm model closure" in report
        assert "measured/predicted" in report
        # every rank computed the same global matrix and λ
        matrix_line = next(
            line for line in report.splitlines() if "total:" in line
        )
        for _, other in results[1:]:
            assert matrix_line in other

    def test_single_rank_report_has_scaling_section(self, kernel_set):
        params = kernel_set.model.params
        forest = BlockForest((16, 16), (8, 8), periodic=True)
        solver = DistributedSolver(kernel_set, forest, comm=None)
        solver.set_state_from(_init((16, 16), params))
        solver.step(2)
        report = solver.profile_report()
        assert "communication matrix" in report
        assert "load imbalance λ" in report


# -- SimComm.recv deadlock timeout ---------------------------------------------


class TestRecvTimeout:
    def test_deadlocked_pair_raises_named_rank_error(self):
        def program(comm):
            # both ranks receive first: a classic deadlock
            return comm.recv(source=1 - comm.rank, tag=7)

        with pytest.raises(RankError) as exc_info:
            run_ranks(2, program, recv_timeout=0.3)
        message = str(exc_info.value)
        assert "timed out" in message
        assert "tag=7" in message
        assert "source=" in message and "dest=" in message

    def test_matched_sends_unaffected(self):
        def program(comm):
            comm.send(comm.rank * 10, 1 - comm.rank, tag=1)
            return comm.recv(1 - comm.rank, tag=1)

        assert run_ranks(2, program, recv_timeout=5.0) == [10, 0]


# -- multi-rank metrics export -------------------------------------------------


class TestMultiRankMetrics:
    def test_rank_labels_survive_prometheus_roundtrip(self):
        registry = MetricsRegistry()
        profilers = []
        for rank in range(2):
            prof = SolverProfiler()
            prof.record("kernel", 0.5 + rank, cells=1000, nbytes=64)
            prof.export_metrics(registry, solver="distributed", rank=rank)
            profilers.append(prof)
        parsed = parse_prometheus(registry.to_prometheus())
        for rank in range(2):
            value = find_sample(
                parsed, "repro_op_seconds_total",
                op="kernel", rank=str(rank), solver="distributed",
            )
            assert value == pytest.approx(0.5 + rank)
        merged = SolverProfiler()
        for prof in profilers:
            merged.merge(prof)
        assert merged.records["kernel"].seconds == pytest.approx(2.0)

    def test_merged_histograms_sum_counts(self):
        registry = MetricsRegistry()
        for rank in range(3):
            h = registry.histogram(
                "repro_step_seconds", "per-step latency",
                solver="distributed", rank=rank,
            )
            for _ in range(4):
                h.observe(0.01 * (rank + 1))
        parsed = parse_prometheus(registry.to_prometheus())
        total = 0.0
        for rank in range(3):
            count = find_sample(
                parsed, "repro_step_seconds", "repro_step_seconds_count",
                solver="distributed", rank=str(rank),
            )
            assert count == 4.0
            total += count
        assert total == 12.0


# -- BENCH JSON + regression gate ----------------------------------------------


class TestBenchJson:
    def test_writer_roundtrip(self, tmp_path):
        writer = BenchWriter("scaling")
        writer.add("a", params={"ranks": 4}, mlups=1.5, parallel_efficiency=0.9)
        writer.add("a", mlups=2.0)   # replaces, stays unique
        path = tmp_path / "BENCH_scaling.json"
        writer.write(path)
        doc = load_bench_document(path)
        assert doc["suite"] == "scaling"
        assert len(doc["records"]) == 1
        assert doc["records"][0]["metrics"]["mlups"] == 2.0

    def test_rejects_bad_metrics(self):
        writer = BenchWriter("kernels")
        with pytest.raises(ValueError):
            writer.add("x", mlups=float("nan"))
        with pytest.raises(ValueError):
            writer.add("x", mlups="fast")
        with pytest.raises(ValueError):
            writer.add("x")

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(BenchSchemaError):
            validate_bench_document({"schema": "nope"})
        with pytest.raises(BenchSchemaError):
            validate_bench_document(
                {"schema": "repro-bench/1", "suite": "s",
                 "records": [{"name": "a", "metrics": {}}]}
            )


class TestBenchRegress:
    @pytest.fixture()
    def harness(self, tmp_path):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
        try:
            import bench_regress
        finally:
            sys.path.pop(0)

        writer = BenchWriter("scaling")
        writer.add("run", params={"ranks": 4}, mlups=100.0, step_seconds=0.5)
        bench = tmp_path / "BENCH_scaling.json"
        writer.write(bench)
        baseline = tmp_path / "baseline.json"
        assert bench_regress.main(
            ["record", str(bench), "--baseline", str(baseline)]
        ) == 0
        return bench_regress, bench, baseline, tmp_path

    def _write_scaled(self, bench, tmp_path, **metrics):
        doc = json.loads(bench.read_text())
        doc["records"][0]["metrics"].update(metrics)
        slowed = tmp_path / "BENCH_slowed.json"
        slowed.write_text(json.dumps(doc))
        return slowed

    def test_identical_run_passes(self, harness):
        bench_regress, bench, baseline, _ = harness
        assert bench_regress.main(
            ["compare", str(bench), "--baseline", str(baseline)]
        ) == 0

    def test_regression_fails(self, harness):
        bench_regress, bench, baseline, tmp_path = harness
        slowed = self._write_scaled(bench, tmp_path, mlups=50.0)
        assert bench_regress.main(
            ["compare", str(slowed), "--baseline", str(baseline),
             "--tolerance", "0.25"]
        ) == 1

    def test_lower_is_better_direction(self, harness):
        bench_regress, bench, baseline, tmp_path = harness
        # step_seconds up = regression; mlups up = improvement
        worse = self._write_scaled(bench, tmp_path, step_seconds=1.0)
        assert bench_regress.main(
            ["compare", str(worse), "--baseline", str(baseline),
             "--tolerance", "0.25"]
        ) == 1
        better = self._write_scaled(
            bench, tmp_path, mlups=500.0, step_seconds=0.1
        )
        assert bench_regress.main(
            ["compare", str(better), "--baseline", str(baseline),
             "--tolerance", "0.25"]
        ) == 0

    def test_warn_only_passes_but_schema_errors_fail(self, harness):
        bench_regress, bench, baseline, tmp_path = harness
        slowed = self._write_scaled(bench, tmp_path, mlups=10.0)
        assert bench_regress.main(
            ["compare", str(slowed), "--baseline", str(baseline),
             "--tolerance", "0.25", "--warn-only"]
        ) == 0
        broken = tmp_path / "broken.json"
        broken.write_text('{"schema": "bogus"}')
        assert bench_regress.main(
            ["compare", str(broken), "--baseline", str(baseline),
             "--warn-only"]
        ) == 2
