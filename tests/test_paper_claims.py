"""Headline claims of the paper verified at test level (shape, not absolute).

The heavier table/figure regenerations live in ``benchmarks/``; this module
asserts the claims that are cheap enough for the regular test suite, all on
the P1 configuration (4 phases, 3 components, 3D).
"""

import numpy as np
import pytest

from repro.pfm import GrandPotentialModel, make_p1


@pytest.fixture(scope="module")
def p1_model():
    return GrandPotentialModel(make_p1(dim=3))


@pytest.fixture(scope="module")
def p1_full(p1_model):
    return p1_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="module")
def p1_split(p1_model):
    return p1_model.create_kernels(variant_phi="split", variant_mu="split")


class TestTable1Claims:
    def test_mu_full_loads_stores_exact(self, p1_full):
        oc = p1_full.mu_kernels[0].operation_count()
        assert (oc.loads, oc.stores) == (112, 2)  # Table 1, µ-full column

    def test_phi_full_loads_stores_exact(self, p1_full):
        oc = p1_full.phi_kernels[0].operation_count()
        assert (oc.loads, oc.stores) == (30, 4)

    def test_mu_split_loads_stores_exact(self, p1_split):
        pairs = [
            (k.operation_count().loads, k.operation_count().stores)
            for k in p1_split.mu_kernels
        ]
        assert pairs == [(84, 6), (22, 2)]

    def test_phi_split_loads_stores_exact(self, p1_split):
        pairs = [
            (k.operation_count().loads, k.operation_count().stores)
            for k in p1_split.phi_kernels
        ]
        assert pairs == [(16, 12), (54, 4)]

    def test_mu_split_halves_flops(self, p1_full, p1_split):
        """'The µ-split kernel requires almost only half of the operations'"""
        full = p1_full.mu_kernels[0].operation_count().normalized_flops()
        split = sum(
            k.operation_count().normalized_flops() for k in p1_split.mu_kernels
        )
        assert 0.4 < split / full < 0.75

    def test_automatic_simplification_beats_manual_budget(self, p1_split):
        """§5.1: the auto-simplified µ-split kernel needs no more normalized
        FLOPs than the manually optimized 1 384 of [2]."""
        split = sum(
            k.operation_count().normalized_flops() for k in p1_split.mu_kernels
        )
        assert split <= 1384

    def test_mu_kernel_has_irrational_ops_phi_does_not(self, p1_full):
        """Table 1: only the µ kernels contain (r)sqrts (anti-trapping)."""
        mu = p1_full.mu_kernels[0].operation_count()
        phi = p1_full.phi_kernels[0].operation_count()
        assert mu.rsqrts + mu.sqrts > 0
        assert phi.rsqrts + phi.sqrts == 0

    def test_wide_stencil_structure(self, p1_full):
        """Algorithm 1: φ kernel reads φ with D3C7 and µ at the center only;
        the µ kernel reads both φ arrays with wide stencils."""
        phi_kernel = p1_full.phi_kernels[0]
        mu_reads = {
            acc.offsets
            for acc in phi_kernel.ac.field_reads
            if acc.field.name == "mu"
        }
        assert mu_reads == {(0, 0, 0)}
        phi_offsets = {
            acc.offsets
            for acc in phi_kernel.ac.field_reads
            if acc.field.name == "phi"
        }
        assert all(sum(abs(o) for o in off) <= 1 for off in phi_offsets)  # D3C7

        mu_kernel = p1_full.mu_kernels[0]
        fields_read = {f.name for f in mu_kernel.ac.fields_read}
        assert {"phi", "phi_dst", "mu"} <= fields_read
        phi_offsets_mu = {
            acc.offsets
            for acc in mu_kernel.ac.field_reads
            if acc.field.name in ("phi", "phi_dst")
        }
        assert any(sum(abs(o) for o in off) == 2 for off in phi_offsets_mu), \
            "µ kernel must read φ diagonally (D3C19)"


class TestConfigurationClaims:
    def test_configuration_parameter_count_scale(self, p1_model):
        """§5.1: 'more than 50 material-dependent quantities' for 4 phases /
        3 components."""
        assert p1_model.params.configuration_parameter_count() > 50

    def test_parameters_are_folded(self, p1_full):
        """No model parameters remain as runtime kernel arguments — only the
        analytic time and the RNG keys may survive."""
        for k in p1_full.all_kernels:
            names = {p.name for p in k.parameters}
            assert names <= {"t", "time_step", "seed"}, names


class TestBlockingClaim:
    def test_layer_condition_blocking(self, p1_full):
        """§6.1: µ-full needs ~232·N² bytes; 1 MiB L2 → N < 67 → 60³ blocks."""
        from repro.perfmodel import blocking_factor

        n = blocking_factor(p1_full.mu_kernels[0], 1024 * 1024)
        assert 50 <= n <= 80

    def test_crossover_in_socket(self, p1_full, p1_split):
        """Fig. 2 left: ECM µ variant crossover at ~16 cores."""
        from repro.perfmodel import ECMModel, SKYLAKE_8174

        ecm = ECMModel(SKYLAKE_8174)
        p_full = [ecm.predict(k, (60, 60, 60)) for k in p1_full.mu_kernels]
        p_split = [ecm.predict(k, (60, 60, 60)) for k in p1_split.mu_kernels]

        def combined(preds, n):
            return 1.0 / sum(1.0 / p.mlups(n) for p in preds)

        assert combined(p_split, 1) > combined(p_full, 1)
        crossover = next(
            (n for n in range(1, 25) if combined(p_full, n) > combined(p_split, n)),
            None,
        )
        assert crossover is not None and 8 <= crossover <= 24


class TestRecompilationWorkflow:
    def test_symbolic_parameters_stay_runtime(self, p1_model):
        """§5.1: 'the user may choose a set of parameters that remain
        variables at runtime' — disabling constant folding keeps dt/dx as
        kernel arguments."""
        ks = p1_model.create_kernels(variant_phi="full", fold_constants=False)
        names = {p.name for p in ks.phi_kernels[0].parameters}
        assert "dt" in names and "dx_0" in names
