"""Philox-4x32-10 tests: known-answer vectors, statistics, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rng import philox_4x32_10, philox_field, philox_uniform_double2


class TestKnownAnswers:
    """Reference vectors from the Random123 distribution (Salmon et al.)."""

    def test_zero_vector(self):
        r = philox_4x32_10(0, 0, 0, 0, 0, 0)
        assert [int(x) for x in r] == [0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8]

    def test_ones_vector(self):
        f = 0xFFFFFFFF
        r = philox_4x32_10(f, f, f, f, f, f)
        assert [int(x) for x in r] == [0x408F276D, 0x41C83B0E, 0xA20BC7C6, 0x6D5451FD]

    def test_pi_vector(self):
        r = philox_4x32_10(
            0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344, 0xA4093822, 0x299F31D0
        )
        assert [int(x) for x in r] == [0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1]


class TestVectorization:
    def test_broadcasting(self):
        c0 = np.arange(100, dtype=np.uint32)
        r = philox_4x32_10(c0, 0, 0, 0, 1, 2)
        assert all(x.shape == (100,) for x in r)
        # must equal scalar evaluation elementwise
        scalar = philox_4x32_10(np.uint32(7), 0, 0, 0, 1, 2)
        for lane in range(4):
            assert r[lane][7] == scalar[lane]

    def test_counter_sensitivity(self):
        """Changing any counter word changes the output (avalanche)."""
        base = philox_4x32_10(1, 2, 3, 4, 5, 6)
        for word in range(4):
            args = [1, 2, 3, 4]
            args[word] += 1
            other = philox_4x32_10(*args, 5, 6)
            assert any(int(a) != int(b) for a, b in zip(base, other))

    def test_key_sensitivity(self):
        a = philox_4x32_10(1, 2, 3, 4, 5, 6)
        b = philox_4x32_10(1, 2, 3, 4, 5, 7)
        assert any(int(x) != int(y) for x, y in zip(a, b))


class TestDoubles:
    def test_unit_interval(self):
        c = np.arange(4096, dtype=np.uint32)
        d0, d1 = philox_uniform_double2(c, 0, 0, 0, 0, 0)
        for d in (d0, d1):
            assert np.all(d >= 0.0) and np.all(d < 1.0)

    def test_mean_and_variance(self):
        c = np.arange(1 << 16, dtype=np.uint32)
        d0, d1 = philox_uniform_double2(c, 1, 2, 3, 4, 5)
        sample = np.concatenate([d0, d1])
        assert sample.mean() == pytest.approx(0.5, abs=0.01)
        assert sample.var() == pytest.approx(1 / 12, rel=0.05)

    def test_lanes_independent(self):
        c = np.arange(1 << 14, dtype=np.uint32)
        d0, d1 = philox_uniform_double2(c, 0, 0, 0, 9, 9)
        corr = np.corrcoef(d0, d1)[0, 1]
        assert abs(corr) < 0.05


class TestField:
    def test_shape_and_range(self):
        f = philox_field((8, 9, 10), time_step=3, seed=1, low=-2.0, high=2.0)
        assert f.shape == (8, 9, 10)
        assert np.all(f >= -2.0) and np.all(f < 2.0)

    def test_offset_consistency(self):
        """A shifted window must reproduce the same global numbers."""
        full = philox_field((16, 16), time_step=1, seed=4)
        window = philox_field((8, 8), time_step=1, seed=4, offset=(4, 4))
        np.testing.assert_array_equal(window, full[4:12, 4:12])

    def test_streams_differ(self):
        a = philox_field((32, 32), 0, 0, stream=0)
        b = philox_field((32, 32), 0, 0, stream=1)
        c = philox_field((32, 32), 0, 0, stream=2)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_dim_limit(self):
        with pytest.raises(ValueError):
            philox_field((2, 2, 2, 2), 0)

    @settings(max_examples=25, deadline=None)
    @given(
        ts=st.integers(0, 2**31 - 1),
        seed=st.integers(0, 2**31 - 1),
        stream=st.integers(0, 7),
    )
    def test_deterministic(self, ts, seed, stream):
        a = philox_field((5, 5), ts, seed, stream)
        b = philox_field((5, 5), ts, seed, stream)
        np.testing.assert_array_equal(a, b)
