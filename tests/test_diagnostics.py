"""Codegen-derived physics diagnostics (tier-1).

Covers the reduction-kernel pipeline end to end: reduction outputs in the
assignment collection and kernel IR, the numpy/C backend reduction code
paths, the fixed-order tiled sum that makes single-process and
distributed evaluations bit-identical, the model-derived diagnostic suite
(free energy, volume fractions, solute mass, interface area), the
conservation/energy-decay invariant watchdogs, and the streaming
:class:`DiagnosticsSeries` sinks (CSV, gauges, trace counters).
"""

import dataclasses

import numpy as np
import pytest
import sympy as sp

from repro.backends.c_backend import c_compiler_available, compile_c_kernel
from repro.backends.numpy_backend import compile_numpy_kernel, create_arrays
from repro.backends.runtime import tile_sum
from repro.diagnostics import (
    DiagnosticSpec,
    DiagnosticsSeries,
    DiagnosticsSuite,
    functional_diagnostics,
    invariant_names,
    merge_partials,
    model_diagnostics,
)
from repro.ir import KernelConfig, create_kernel
from repro.observability import (
    HealthError,
    HealthMonitor,
    get_tracer,
    parse_prometheus,
    find_sample,
    reset_metrics,
    get_registry,
)
from repro.parallel import BlockForest, run_ranks
from repro.parallel.timeloop import DistributedSolver
from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)
from repro.symbolic import fields
from repro.symbolic.assignment import Assignment, AssignmentCollection
from repro.symbolic.operators import Diff


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture(scope="module")
def binary_model():
    params = dataclasses.replace(make_two_phase_binary(dim=2), dt=1e-3)
    return GrandPotentialModel(params)


@pytest.fixture(scope="module")
def binary_kernels(binary_model):
    return binary_model.create_kernels()


def _front_state(params, shape=(24, 24)):
    return planar_front(
        shape, params.n_phases, 0, 1,
        position=shape[0] / 2, epsilon=params.epsilon,
    )


# -- reduction kernels through the IR ---------------------------------------


class TestReductionKernels:
    def _simple_ac(self):
        u = fields("u: double[2D]")
        total = sp.Symbol("total", real=True)
        return AssignmentCollection(
            [Assignment(total, u.center() ** 2)],
            name="sumsq",
            reduction_symbols=["total"],
        ), u

    def test_reduction_outputs_survive_create_kernel(self):
        ac, _ = self._simple_ac()
        kernel = create_kernel(ac, KernelConfig())
        assert kernel.is_reduction
        assert kernel.reductions == ("total",)

    def test_mixing_stores_and_reductions_raises(self):
        u, u_dst = fields("u, u_dst: double[2D]")
        total = sp.Symbol("total", real=True)
        ac = AssignmentCollection(
            [
                Assignment(total, u.center() ** 2),
                Assignment(u_dst.center(), u.center()),
            ],
            name="mixed",
            reduction_symbols=["total"],
        )
        with pytest.raises(ValueError, match="mix field stores"):
            create_kernel(ac, KernelConfig())

    def test_numpy_reduction_matches_reference(self):
        ac, _ = self._simple_ac()
        kernel = create_kernel(ac, KernelConfig())
        compiled = compile_numpy_kernel(kernel)
        arrays = create_arrays(kernel.fields, (9, 7), ghost_layers=1)
        rng = np.random.default_rng(3)
        arrays["u"][...] = rng.random(arrays["u"].shape)
        out = compiled(arrays, ghost_layers=1)
        ref = float(np.sum(arrays["u"][1:-1, 1:-1] ** 2))
        assert out["total"] == pytest.approx(ref, rel=1e-13)

    def test_gradient_reduction_needs_ghosts(self):
        u = fields("u: double[2D]")
        total = sp.Symbol("grad2", real=True)
        expr = Diff(u.center(), 0) ** 2 + Diff(u.center(), 1) ** 2
        from repro.discretization import FiniteDifferenceDiscretization

        disc = FiniteDifferenceDiscretization(dim=2, dst_map={})
        ac = AssignmentCollection(
            [Assignment(total, disc(expr))],
            name="gradsq",
            reduction_symbols=["grad2"],
        )
        kernel = create_kernel(
            ac, KernelConfig(parameter_values={"dx_0": 1.0, "dx_1": 1.0})
        )
        assert kernel.ghost_layers >= 1
        compiled = compile_numpy_kernel(kernel)
        arrays = create_arrays(kernel.fields, (12, 8), ghost_layers=1)
        x = np.arange(14)[:, None] * np.ones((1, 10))
        arrays["u"][...] = x  # du/dx = 1 by central differences
        out = compiled(arrays, ghost_layers=1)
        assert out["grad2"] == pytest.approx(12 * 8, rel=1e-12)

    def test_tiled_sum_bitwise_matches_block_merge(self):
        ac, _ = self._simple_ac()
        kernel = create_kernel(ac, KernelConfig())
        compiled = compile_numpy_kernel(kernel)
        arrays = create_arrays(kernel.fields, (12, 8), ghost_layers=1)
        rng = np.random.default_rng(11)
        arrays["u"][...] = rng.random(arrays["u"].shape)

        tiled = compiled(arrays, ghost_layers=1, tile_shape=(4, 4))["total"]

        per_block = {}
        for bi in range(3):
            for bj in range(2):
                sub = create_arrays(kernel.fields, (4, 4), ghost_layers=1)
                sub["u"][1:-1, 1:-1] = arrays["u"][
                    1 + 4 * bi : 1 + 4 * (bi + 1), 1 + 4 * bj : 1 + 4 * (bj + 1)
                ]
                out = compiled(sub, ghost_layers=1)
                per_block[(bi, bj)] = ({"total": out["total"]}, 16)
        totals, n = merge_partials(per_block)
        assert n == 12 * 8
        assert totals["total"] == tiled  # bitwise

    def test_tile_shape_rejected_for_stencil_kernels(self, binary_kernels):
        compiled = compile_numpy_kernel(binary_kernels.phi_kernels[0])
        arrays = create_arrays(binary_kernels.fields, (8, 8), ghost_layers=1)
        with pytest.raises(ValueError, match="tile_shape"):
            compiled(arrays, ghost_layers=1, tile_shape=(4, 4))

    @pytest.mark.skipif(not c_compiler_available(), reason="no C compiler")
    def test_c_backend_reduction_matches_numpy(self):
        ac, _ = self._simple_ac()
        kernel = create_kernel(ac, KernelConfig())
        np_out = compile_numpy_kernel(kernel)
        c_out = compile_c_kernel(kernel)
        arrays = create_arrays(kernel.fields, (16, 16), ghost_layers=1)
        rng = np.random.default_rng(5)
        arrays["u"][...] = rng.random(arrays["u"].shape)
        a = np_out(arrays, ghost_layers=1)["total"]
        b = c_out(arrays, ghost_layers=1)["total"]
        assert b == pytest.approx(a, rel=1e-12)
        with pytest.raises(ValueError, match="numpy backend"):
            c_out(arrays, ghost_layers=1, tile_shape=(4, 4))

    def test_tile_sum_helper(self):
        a = np.arange(30, dtype=np.float64).reshape(5, 6)
        assert tile_sum(a) == float(a.sum())
        assert tile_sum(a, (2, 3)) == pytest.approx(float(a.sum()), rel=1e-15)
        with pytest.raises(ValueError):
            tile_sum(a, (0, 3))


# -- symbolic derivation -----------------------------------------------------


class TestDerivation:
    def test_model_suite_names(self, binary_model):
        specs = model_diagnostics(binary_model)
        names = [s.name for s in specs]
        assert names == [
            "free_energy",
            "phase_fraction_0",
            "phase_fraction_1",
            "solute_mass_0",
            "interface_area",
        ]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            DiagnosticSpec("x", sp.Symbol("y"), scale="median")

    def test_invariant_names_gating(self, binary_model):
        names = ["free_energy", "solute_mass_0", "interface_area"]
        mass, energy = invariant_names(names, binary_model.params)
        assert mass == ("solute_mass_0",)
        assert energy == "free_energy"
        noisy = dataclasses.replace(
            binary_model.params, fluctuation_amplitude=0.01
        )
        mass, energy = invariant_names(names, noisy)
        assert mass == ("solute_mass_0",)
        assert energy is None  # noise breaks dPsi/dt <= 0

    def test_functional_diagnostics_quickstart_shape(self):
        from repro.symbolic import EnergyFunctional, gradient_norm

        phi = fields("phi: double[2D]")
        c = phi.center()
        functional = EnergyFunctional(
            gradient_energy=gradient_norm(c, squared=True, dim=2),
            potential=c * (1 - c),
            epsilon=sp.Float(4.0),
        )
        specs = functional_diagnostics(functional, phi, dim=2)
        assert [s.name for s in specs] == [
            "free_energy", "phase_fraction", "interface_area",
        ]
        suite = DiagnosticsSuite(specs, dim=2, dx=1.0)
        arrays = create_arrays(suite.kernel.fields, (10, 10), ghost_layers=1)
        arrays["phi"][...] = 0.5
        values = suite.evaluate(arrays, ghost_layers=1)
        # uniform phi=0.5: no gradients, potential = 0.25/eps per cell
        assert values["phase_fraction"] == pytest.approx(0.5)
        assert values["interface_area"] == pytest.approx(0.0, abs=1e-12)
        assert values["free_energy"] == pytest.approx(100 * 0.25 / 4.0)


# -- in-situ evaluation on the solvers --------------------------------------


class TestSolverDiagnostics:
    def test_solute_mass_conserved_and_energy_decays(
        self, binary_model, binary_kernels
    ):
        params = binary_model.params
        solver = SingleBlockSolver(binary_kernels, (24, 24), boundary="periodic")
        solver.set_state(_front_state(params), mu=0.0)
        series = solver.enable_diagnostics(every=1)
        solver.step(20)
        assert len(series) == 21  # initial row + 20 steps

        mass = series.column("solute_mass_0")
        drift = max(abs(m - mass[0]) for m in mass) / abs(mass[0])
        assert drift < 1e-8

        energy = series.column("free_energy")
        assert all(
            energy[i + 1] <= energy[i] for i in range(len(energy) - 1)
        )
        fractions = np.array(
            [series.column("phase_fraction_0"), series.column("phase_fraction_1")]
        )
        np.testing.assert_allclose(fractions.sum(axis=0), 1.0, atol=1e-12)
        assert all(v > 0 for v in series.column("interface_area"))

    def test_conservation_watchdog_fires_on_drift(self, binary_kernels):
        monitor = HealthMonitor(policy="record", conservation_tol=1e-16)
        params = binary_kernels.model.params
        solver = SingleBlockSolver(
            binary_kernels, (16, 16), boundary="periodic", health=monitor
        )
        solver.set_state(_front_state(params, (16, 16)), mu=0.0)
        solver.enable_diagnostics(every=1)
        solver.step(5)
        checks = {e.check for e in monitor.events}
        assert "conservation" in checks
        parsed = parse_prometheus(get_registry().to_prometheus())
        assert find_sample(
            parsed, "repro_health_events_total",
            check="conservation", field="solute_mass_0",
        ) >= 1

    def test_dt_blowup_trips_energy_decay_before_nan(self, binary_model):
        params = dataclasses.replace(binary_model.params, dt=2.0)
        kernels = GrandPotentialModel(params).create_kernels()
        solver = SingleBlockSolver(
            kernels, (24, 24), boundary="periodic",
            health=HealthMonitor(policy="raise", conservation_tol=None),
        )
        solver.set_state(_front_state(params), mu=0.0)
        solver.enable_diagnostics(every=1)
        with pytest.raises(HealthError) as err:
            solver.step(50)
        assert {e.check for e in err.value.events} == {"energy_decay"}
        # the invariant fired while every value was still finite — the
        # NaN watchdog never got a chance
        assert all(
            np.isfinite(v) for v in solver.diagnostics.last().values()
        )
        assert not any(e.check == "nan" for e in solver.health.events)


class TestDistributedDiagnostics:
    def _setup(self, binary_kernels):
        params = binary_kernels.model.params
        phi0 = planar_front(
            (16, 8), params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
        )

        def init(offset, shape):
            sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
            return phi0[sl], 0.0

        return phi0, init

    def test_four_ranks_bitwise_match_single_process(self, binary_kernels):
        phi0, init = self._setup(binary_kernels)
        forest = BlockForest((16, 8), (4, 4), periodic=True)

        solo = DistributedSolver(binary_kernels, forest, comm=None)
        solo.set_state_from(init)
        solo_series = solo.enable_diagnostics(every=1)
        solo.step(4)
        solo_rows = [tuple(r.values()) for r in solo_series.rows]

        def prog(comm):
            s = DistributedSolver(binary_kernels, forest, comm=comm)
            s.set_state_from(init)
            series = s.enable_diagnostics(every=1)
            s.step(4)
            return [tuple(r.values()) for r in series.rows]

        results = run_ranks(4, prog)
        assert all(rows == results[0] for rows in results)  # rank-independent
        assert results[0] == solo_rows  # and == single process, bitwise

    def test_single_block_solver_reproduces_distributed_series(
        self, binary_kernels
    ):
        phi0, init = self._setup(binary_kernels)
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        dist = DistributedSolver(binary_kernels, forest, comm=None)
        dist.set_state_from(init)
        dist_series = dist.enable_diagnostics(every=1)
        dist.step(3)

        single = SingleBlockSolver(binary_kernels, (16, 8), boundary="periodic")
        single.set_state(phi0, mu=0.0)
        series = single.enable_diagnostics(
            every=1, tile_shape=forest.block_shape
        )
        single.step(3)
        assert [tuple(r.values()) for r in series.rows] == [
            tuple(r.values()) for r in dist_series.rows
        ]

    def test_rank0_only_owns_csv(self, binary_kernels, tmp_path):
        _, init = self._setup(binary_kernels)
        forest = BlockForest((16, 8), (8, 8), periodic=True)
        csv_path = tmp_path / "diag.csv"

        def prog(comm):
            s = DistributedSolver(binary_kernels, forest, comm=comm)
            s.set_state_from(init)
            series = s.enable_diagnostics(every=1, csv_path=csv_path)
            s.step(2)
            return series.csv_path

        paths = run_ranks(2, prog)
        assert paths[0] == str(csv_path) and paths[1] is None
        import csv as csv_mod

        with open(csv_path, newline="") as fh:
            rows = list(csv_mod.DictReader(fh))
        assert len(rows) == 3 and "free_energy" in rows[0]


# -- series sinks ------------------------------------------------------------


class TestDiagnosticsSeries:
    def test_csv_and_columns(self, tmp_path):
        path = tmp_path / "series.csv"
        series = DiagnosticsSeries(
            ["free_energy"], csv_path=path, metrics=False, trace=False
        )
        series.record(0, 0.0, {"free_energy": 2.0})
        series.record(1, 0.1, {"free_energy": 1.5})
        assert series.column("free_energy") == [2.0, 1.5]
        assert series.last()["time_step"] == 1
        text = path.read_text().splitlines()
        assert text[0] == "time_step,time,free_energy"
        assert len(text) == 3
        with pytest.raises(KeyError):
            series.record(2, 0.2, {})
        with pytest.raises(KeyError):
            series.column("nope")

    def test_gauges_and_trace_counters(self):
        tracer = get_tracer()
        tracer.enabled = True
        tracer.reset()
        try:
            series = DiagnosticsSeries(["free_energy", "interface_area"])
            series.record(0, 0.0, {"free_energy": 3.0, "interface_area": 7.0})
            parsed = parse_prometheus(get_registry().to_prometheus())
            assert find_sample(
                parsed, "repro_diagnostic", name="free_energy"
            ) == 3.0
            doc = tracer.to_chrome()
            counters = [
                ev for ev in doc["traceEvents"] if ev.get("ph") == "C"
            ]
            assert counters and counters[0]["args"] == {
                "free_energy": 3.0, "interface_area": 7.0,
            }
        finally:
            tracer.reset()
            tracer.enabled = False
