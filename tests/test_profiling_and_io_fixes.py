"""Shared kernel cache, solver profiling, and checkpoint/IO regressions.

Covers the observability subsystem (:mod:`repro.profiling`) — structural
kernel fingerprints, the process-wide compile cache with hit/miss counters,
per-kernel timing reports — and three I/O bug fixes: checkpoint paths
without ``.npz``, 2D vector fields in :func:`write_vtk`, and header-only
CSV time series.
"""

import numpy as np
import pytest

from repro.analysis import TimeSeriesWriter, snapshot_path, write_vtk
from repro.parallel import BlockForest
from repro.parallel.timeloop import DistributedSolver
from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)
from repro.profiling import (
    SolverProfiler,
    clear_kernel_cache,
    compile_cached,
    kernel_cache_stats,
    kernel_fingerprint,
)


def _params():
    params = make_two_phase_binary(dim=2)
    params.fluctuation_amplitude = 0.02  # exercise the global Philox counters
    return params


@pytest.fixture(scope="module")
def kernel_set():
    return GrandPotentialModel(_params()).create_kernels()


class TestKernelFingerprint:
    def test_deterministic_across_regenerations(self, kernel_set):
        regenerated = GrandPotentialModel(_params()).create_kernels()
        fps = [kernel_fingerprint(k) for k in kernel_set.all_kernels]
        fps2 = [kernel_fingerprint(k) for k in regenerated.all_kernels]
        assert fps == fps2

    def test_distinct_kernels_distinct_hashes(self, kernel_set):
        fps = [kernel_fingerprint(k) for k in kernel_set.all_kernels]
        assert len(set(fps)) == len(fps)

    def test_parametrization_changes_hash(self, kernel_set):
        other_params = _params()
        other_params.fluctuation_amplitude = 0.0
        other = GrandPotentialModel(other_params).create_kernels()
        assert kernel_fingerprint(other.phi_kernels[0]) != kernel_fingerprint(
            kernel_set.phi_kernels[0]
        )


class TestKernelCache:
    def test_two_solvers_compile_each_kernel_once(self, kernel_set):
        clear_kernel_cache()
        n = len(kernel_set.all_kernels)

        SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        after_first = kernel_cache_stats()
        assert after_first.misses == n
        assert after_first.hits == 0
        assert after_first.size == n

        SingleBlockSolver(kernel_set, (12, 4), boundary="periodic")
        after_second = kernel_cache_stats()
        assert after_second.misses == n  # nothing recompiled
        assert after_second.hits == n

    def test_single_and_distributed_share_cache(self, kernel_set):
        clear_kernel_cache()
        n = len(kernel_set.all_kernels)
        SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        DistributedSolver(kernel_set, forest, comm=None)
        stats = kernel_cache_stats()
        assert stats.misses == n
        assert stats.hits == n

    def test_cached_objects_are_shared(self, kernel_set):
        k = kernel_set.projection_kernel
        assert compile_cached(k) is compile_cached(k)

    def test_unknown_backend_rejected(self, kernel_set):
        with pytest.raises(ValueError, match="backend"):
            compile_cached(kernel_set.projection_kernel, "fortran")


class TestBitIdentityWithSharedCache:
    def test_distributed_matches_single_block(self, kernel_set):
        """Philox bit-identity survives the shared compile cache."""
        clear_kernel_cache()
        params = kernel_set.model.params
        shape = (16, 8)
        phi0 = planar_front(
            shape, params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
        )

        single = SingleBlockSolver(kernel_set, shape, boundary="periodic", seed=0)
        single.set_state(phi0, mu=0.0)
        single.step(5)

        forest = BlockForest(shape, (4, 4), periodic=True)
        dist = DistributedSolver(kernel_set, forest, comm=None, seed=0)
        dist.set_state_from(
            lambda off, shp: (
                phi0[tuple(slice(o, o + s) for o, s in zip(off, shp))],
                0.0,
            )
        )
        dist.step(5)

        assert kernel_cache_stats().hits > 0  # the solvers really shared builds
        np.testing.assert_array_equal(dist.gather("phi"), single.phi)
        np.testing.assert_array_equal(dist.gather("mu"), single.mu)


class TestSolverProfiling:
    def test_single_block_report(self, kernel_set):
        solver = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        solver.set_state(
            planar_front(
                (8, 8), 2, 0, 1, position=3.0, epsilon=kernel_set.model.params.epsilon
            )
        )
        solver.step(3)

        recs = solver.profiler.records
        phi_name = kernel_set.phi_kernels[0].name
        assert recs[phi_name].calls == 3
        assert recs[phi_name].cells == 3 * 64
        assert recs[phi_name].seconds > 0
        assert recs[phi_name].mlups > 0
        assert any(name.startswith("fill:") for name in recs)

        report = solver.profile_report()
        assert "MLUP/s" in report and phi_name in report and "calls" in report

    def test_distributed_exchange_timed(self, kernel_set):
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernel_set, forest, comm=None)
        solver.set_state_from(lambda off, shp: (np.full(shp + (2,), 0.5), 0.0))
        solver.step(2)

        recs = solver.profiler.records
        assert recs["exchange:phi_dst"].calls == 2
        assert recs["exchange:mu_dst"].calls == 2
        # four 4x4 blocks, two sweeps: 2 * 4 * 16 cells per kernel
        assert recs[kernel_set.phi_kernels[0].name].cells == 2 * 4 * 16
        assert "exchange:phi_dst" in solver.profile_report()

    def test_disabled_profiler_is_noop(self):
        prof = SolverProfiler(enabled=False)
        with prof.measure("x", cells=10):
            pass
        assert prof.records == {}
        assert "(no timed operations yet)" in prof.report()

    def test_merge_accumulates(self):
        a, b = SolverProfiler(), SolverProfiler()
        a.record("k", 1.0, cells=100, nbytes=8)
        b.record("k", 2.0, cells=200, nbytes=16)
        b.record("other", 0.5)
        a.merge(b)
        assert a.records["k"].calls == 2
        assert a.records["k"].seconds == pytest.approx(3.0)
        assert a.records["k"].cells == 300
        assert a.records["k"].bytes == 24
        assert a.records["other"].calls == 1


class TestCheckpointRoundTrip:
    def _solver(self, kernel_set, seed=0):
        params = kernel_set.model.params
        s = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic", seed=seed)
        s.set_state(
            planar_front((8, 8), 2, 0, 1, position=3.0, epsilon=params.epsilon)
        )
        return s

    @pytest.mark.parametrize("name", ["snap", "snap.npz"])
    def test_roundtrip_with_and_without_suffix(self, kernel_set, tmp_path, name):
        s1 = self._solver(kernel_set)
        s1.step(2)
        written = s1.save_checkpoint(tmp_path / name)
        assert written == tmp_path / "snap.npz"

        s2 = self._solver(kernel_set)
        s2.load_checkpoint(tmp_path / name)
        np.testing.assert_array_equal(s2.phi, s1.phi)
        np.testing.assert_array_equal(s2.mu, s1.mu)
        assert s2.time_step == 2 and s2.time == pytest.approx(s1.time)

        # restored runs continue identically (same Philox counters)
        s1.step(2)
        s2.step(2)
        np.testing.assert_array_equal(s2.phi, s1.phi)

    def test_snapshot_path_normalization(self):
        assert snapshot_path("a/b/snap").name == "snap.npz"
        assert snapshot_path("a/b/snap.npz").name == "snap.npz"
        assert snapshot_path("snap.v2").name == "snap.v2.npz"


class TestVTKVectorFields:
    def test_2d_vector_field_splits(self, tmp_path):
        u = np.random.default_rng(0).random((4, 3, 2))
        p = write_vtk(tmp_path / "u.vtk", {"u": u}, dim=2)
        text = p.read_text()
        assert "SCALARS u_0 double 1" in text
        assert "SCALARS u_1 double 1" in text
        assert "SCALARS u double 1" not in text
        assert "DIMENSIONS 5 4 2" in text  # (4, 3) cells promoted to one slab

    def test_2d_inferred_from_mixed_fields(self, tmp_path):
        scal = np.ones((4, 3))
        vec = np.ones((4, 3, 2))
        text = write_vtk(tmp_path / "m.vtk", {"s": scal, "v": vec}).read_text()
        assert "SCALARS s double 1" in text
        assert "SCALARS v_0 double 1" in text and "SCALARS v_1 double 1" in text

    def test_lone_3d_array_stays_scalar_volume(self, tmp_path):
        text = write_vtk(tmp_path / "p.vtk", {"phi": np.ones((4, 3, 2))}).read_text()
        assert "SCALARS phi double 1" in text and "DIMENSIONS 5 4 3" in text

    def test_incompatible_rank_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="axes"):
            write_vtk(tmp_path / "bad.vtk", {"x": np.ones((3, 3, 3, 2))}, dim=2)

    def test_empty_fields_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no fields"):
            write_vtk(tmp_path / "e.vtk", {})


class TestTimeSeriesEmptyRead:
    def test_header_only_returns_empty_columns(self, tmp_path):
        w = TimeSeriesWriter(tmp_path / "ts.csv", ["step", "front"])
        data = w.read()
        assert set(data) == {"step", "front"}
        for col in data.values():
            assert col.shape == (0,)

    def test_read_after_appends_unchanged(self, tmp_path):
        w = TimeSeriesWriter(tmp_path / "ts.csv", ["step", "front"])
        w.append(step=0, front=1.0)
        data = w.read()
        np.testing.assert_allclose(data["front"], [1.0])
