"""C backend tests: bitwise parity with the NumPy backend."""

import numpy as np
import pytest
import sympy as sp

from repro.backends import compile_numpy_kernel, create_arrays
from repro.backends.c_backend import (
    c_compiler_available,
    compile_c_kernel,
    generate_c_source,
)
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.ir import KernelConfig, create_kernel
from repro.symbolic import (
    EvolutionEquation,
    Field,
    PDESystem,
    div,
    grad,
    random_uniform,
    x_,
)

pytestmark = pytest.mark.skipif(
    not c_compiler_available(), reason="no C compiler available"
)


def _heat_kernel(dim, variant="full"):
    f = Field("f", dim)
    f_dst = Field("f_dst", dim)
    eq = EvolutionEquation(f.center(), div(grad(f.center())))
    system = PDESystem([eq], name=f"heat{dim}{variant}")
    disc = FiniteDifferenceDiscretization(dim=dim)
    res = discretize_system(system, f_dst, disc, variant=variant)
    if variant == "full":
        return [create_kernel(res)]
    return [create_kernel(res.flux_kernel), create_kernel(res.main_kernel)]


def _run_both(kernels, shape, gl=1, seed=0, **params):
    rng = np.random.default_rng(seed)
    fields = sorted(set().union(*(k.fields for k in kernels)), key=lambda f: f.name)
    a_np = create_arrays(fields, shape, gl)
    for name in a_np:
        a_np[name][...] = rng.random(a_np[name].shape)
    a_c = {n: v.copy() for n, v in a_np.items()}
    for k in kernels:
        compile_numpy_kernel(k)(a_np, ghost_layers=gl, **params)
        compile_c_kernel(k)(a_c, ghost_layers=gl, **params)
    return a_np, a_c


class TestParity:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_heat_bitwise(self, dim):
        kernels = _heat_kernel(dim)
        shape = (12, 7, 6)[:dim]
        spacings = {f"dx_{d}": 0.1 * (d + 1) for d in range(dim)}
        a_np, a_c = _run_both(kernels, shape, dt=1e-3, **spacings)
        np.testing.assert_array_equal(a_np["f_dst"], a_c["f_dst"])

    def test_split_kernels_bitwise(self):
        kernels = _heat_kernel(2, variant="split")
        a_np, a_c = _run_both(kernels, (10, 8), dt=1e-3, dx_0=0.1, dx_1=0.2)
        np.testing.assert_array_equal(a_np["f_dst"], a_c["f_dst"])

    def test_analytic_coordinates_bitwise(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        eq = EvolutionEquation(f.center(), x_[0] ** 2 * div(grad(f.center())))
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="coord_heat"), f_dst, disc)
        k = create_kernel(ac)
        a_np, a_c = _run_both([k], (9, 9), dt=1e-3, dx_0=0.3, dx_1=0.3)
        np.testing.assert_allclose(
            a_np["f_dst"][1:-1, 1:-1], a_c["f_dst"][1:-1, 1:-1], rtol=1e-14
        )

    def test_philox_bitwise(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        eq = EvolutionEquation(f.center(), random_uniform(-1, 1, stream=0))
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="rngk"), f_dst, disc)
        k = create_kernel(ac)
        a_np, a_c = _run_both(
            [k], (8, 8), dt=1.0, dx_0=1.0, dx_1=1.0, time_step=5, seed=11
        )
        np.testing.assert_array_equal(a_np["f_dst"], a_c["f_dst"])

    def test_fastmath_parity(self):
        f = Field("f", 2)
        g = Field("g", 2)
        from repro.symbolic import Assignment, AssignmentCollection

        ac = AssignmentCollection(
            [Assignment(g.center(), 1 / sp.sqrt(f.center() + 2) + 3 / (f.center() + 1))],
            name="fmc",
        )
        k = create_kernel(
            ac, KernelConfig(approximations=("division", "sqrt", "rsqrt"))
        )
        a_np, a_c = _run_both([k], (8, 8))
        np.testing.assert_allclose(
            a_np["g"][1:-1, 1:-1], a_c["g"][1:-1, 1:-1], rtol=1e-6
        )


class TestBinaryModelParity:
    def test_full_time_step(self):
        """One full Algorithm-1 step of the binary model: C == NumPy."""
        from repro.pfm import GrandPotentialModel, make_two_phase_binary, planar_front

        model = GrandPotentialModel(make_two_phase_binary(dim=2))
        ks = model.create_kernels()
        fields = ks.fields
        gl = max(ks.ghost_layers, 1)
        shape = (14, 10)
        phi0 = planar_front(shape, 2, 0, 1, position=5.0, epsilon=4.0)

        results = {}
        for backend, compiler in (
            ("numpy", compile_numpy_kernel),
            ("c", compile_c_kernel),
        ):
            arrays = create_arrays(fields, shape, gl)
            arrays["phi"][gl:-gl, gl:-gl] = phi0
            from repro.parallel.boundary import fill_ghosts

            fill_ghosts(arrays["phi"], gl, 2)
            fill_ghosts(arrays["mu"], gl, 2)
            for k in ks.all_kernels:
                compiler(k)(arrays, ghost_layers=gl, t=0.0)
                if k.name == "phi_project":
                    fill_ghosts(arrays["phi_dst"], gl, 2)
            results[backend] = (arrays["phi_dst"].copy(), arrays["mu_dst"].copy())

        np.testing.assert_allclose(results["c"][0], results["numpy"][0], atol=1e-14)
        np.testing.assert_allclose(results["c"][1], results["numpy"][1], atol=1e-14)


class TestSourceStructure:
    def test_openmp_pragma_present(self):
        (k,) = _heat_kernel(3)
        src = generate_c_source(k)
        assert "#pragma omp parallel for" in src

    def test_restrict_pointers(self):
        (k,) = _heat_kernel(2)
        src = generate_c_source(k)
        assert "double * restrict f_f" in src

    def test_hoisted_temperature_subexpressions(self):
        """Coordinate-only subexpressions must be outside the inner loop."""
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        T = 1 + sp.Float(0.25) * x_[0] + sp.sin(x_[0])
        eq = EvolutionEquation(f.center(), T**3 * div(grad(f.center())))
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="hoist"), f_dst, disc)
        k = create_kernel(ac)
        assert k.hoisted, "expected hoistable temperature subexpressions"
        src = generate_c_source(k)
        # the x_0 definition must appear before the innermost loop opens
        x_def = src.index("const double x_0")
        inner_loop = src.index("for (int64_t i1")
        assert x_def < inner_loop
