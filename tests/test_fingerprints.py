"""Determinism observatory (tier-1): fingerprints, audits, divergence tools.

Covers the shared JSONL ledger base, the BLAKE2b digest primitives and
their fixed lexicographic traversal order, the ``repro-fingerprint/1``
record schema, the live :class:`FingerprintStream` (ledger + metrics +
online audit), solver integration on both the single-block and
distributed solvers — including the headline invariance claims (1 vs N
sim ranks, sim vs process backend, overlap on/off, diagnostics on/off)
and the single-ulp perturbation localization — plus the offline
``tools/divergence.py`` bisection, ``check_observability
--require-fingerprints`` and the HTML report's determinism section.
"""

import dataclasses
import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.observability import (
    HealthError,
    HealthMonitor,
    JsonlLedger,
    RunDir,
    find_sample,
    parse_prometheus,
    get_registry,
    reset_metrics,
)
from repro.observability.fingerprint import (
    FingerprintLedger,
    FingerprintSchemaError,
    FingerprintStream,
    OVERHEAD_GAUGE,
    block_key,
    combined_digest,
    digest_array,
    find_mismatches,
    fingerprint_record,
    parse_block_key,
    tiled_digests,
    validate_fingerprint_record,
)
from repro.parallel import BlockForest, DistributedSolver, run_ranks
from repro.parallel.proc_comm import launch_ranks, process_backend_available
from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture(scope="module")
def binary_kernels():
    params = dataclasses.replace(make_two_phase_binary(dim=2), dt=1e-3)
    return GrandPotentialModel(params).create_kernels()


def _tools(name):
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
    try:
        module = __import__(name)
    finally:
        sys.path.pop(0)
    return module


def _front_init(params, shape=(16, 8)):
    phi0 = planar_front(
        shape, params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
    )

    def init(offset, blk_shape):
        sl = tuple(slice(o, o + s) for o, s in zip(offset, blk_shape))
        return phi0[sl], 0.0

    return phi0, init


# -- shared JSONL ledger base -------------------------------------------------


class TestJsonlLedger:
    def test_append_load_roundtrip_creates_parents(self, tmp_path):
        ledger = JsonlLedger(tmp_path / "deep" / "nested" / "l.jsonl")
        ledger.append({"a": 1})
        ledger.append({"b": [2, 3]})
        assert ledger.load() == [{"a": 1}, {"b": [2, 3]}]

    def test_torn_tail_forgiven_even_in_strict_mode(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = JsonlLedger(path)
        ledger.append({"ok": 1})
        with open(path, "a") as fh:
            fh.write('{"torn": tr')  # crash mid-append
        assert ledger.load() == [{"ok": 1}]
        assert ledger.load(strict=True) == [{"ok": 1}]

    def test_strict_mid_file_garbage_names_path_and_line(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = JsonlLedger(path)
        ledger.append({"ok": 1})
        with open(path, "a") as fh:
            fh.write("not json\n")
        ledger.append({"ok": 2})
        assert ledger.load() == [{"ok": 1}, {"ok": 2}]  # tolerant: skipped
        with pytest.raises(ValueError, match=rf"{path.name}:2"):
            ledger.load(strict=True)

    def test_validate_hook_gates_appends_and_strict_loads(self, tmp_path):
        class Picky(JsonlLedger):
            class SchemaError(ValueError):
                pass

            def validate(self, record):
                if "x" not in record:
                    raise self.SchemaError("no x")
                return record

        ledger = Picky(tmp_path / "l.jsonl")
        ledger.append({"x": 1})
        with pytest.raises(Picky.SchemaError):
            ledger.append({"y": 2})
        with open(ledger.path, "a") as fh:
            fh.write('{"y": 2}\n')
        assert ledger.load() == [{"x": 1}]
        with pytest.raises(Picky.SchemaError, match=":2"):
            ledger.load(strict=True)


# -- digest primitives --------------------------------------------------------


class TestDigestPrimitives:
    def test_digest_is_deterministic_and_input_sensitive(self):
        a = np.arange(12.0).reshape(3, 4)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a.reshape(4, 3))  # shape
        assert digest_array(a) != digest_array(a.astype(np.float32))  # dtype
        b = a.copy()
        b[1, 2] = np.nextafter(b[1, 2], np.inf)
        assert digest_array(a) != digest_array(b)  # single ulp

    def test_noncontiguous_view_hashes_like_its_copy(self):
        a = np.arange(64.0).reshape(8, 8)
        view = a[::2, ::2]
        assert digest_array(view) == digest_array(np.ascontiguousarray(view))

    def test_block_key_roundtrip(self):
        assert block_key((0, 1)) == "0,1"
        assert parse_block_key("10,2") == (10, 2)
        assert parse_block_key(block_key((3,))) == (3,)

    def test_tiled_digests_matches_manual_slices(self):
        a = np.arange(16 * 8, dtype=np.float64).reshape(16, 8)
        out = tiled_digests(a, dim=2, tile_shape=(4, 4))
        assert sorted(out, key=parse_block_key) == [
            block_key((i, j)) for i in range(4) for j in range(2)
        ]
        assert out["2,1"] == digest_array(a[8:12, 4:8])
        assert tiled_digests(a, dim=2) == {"0,0": digest_array(a)}

    def test_tiled_digests_rejects_bad_dim_and_tiles(self):
        a = np.zeros((4, 4))
        with pytest.raises(ValueError, match="dim"):
            tiled_digests(a, dim=3)
        with pytest.raises(ValueError, match="tile shape"):
            tiled_digests(a, dim=2, tile_shape=(4,))

    def test_combined_digest_ignores_insertion_order(self):
        d1, d2 = digest_array(np.ones(3)), digest_array(np.zeros(3))
        fields_a = {"phi": {"0,0": d1, "0,1": d2}, "mu": {"0,0": d2}}
        fields_b = {"mu": {"0,0": d2}, "phi": {"0,1": d2, "0,0": d1}}
        assert combined_digest(fields_a) == combined_digest(fields_b)
        assert combined_digest(fields_a) != combined_digest(
            {"phi": {"0,0": d2, "0,1": d1}, "mu": {"0,0": d2}}
        )

    def test_blocks_sort_numerically_not_lexicographically(self):
        # "10,0" < "2,0" as strings; the traversal must use (2,0) < (10,0)
        d1, d2 = digest_array(np.ones(3)), digest_array(np.zeros(3))
        h = hashlib.blake2b(digest_size=16)
        h.update(b"f")
        for key, dig in (("2,0", d1), ("10,0", d2)):
            h.update(key.encode())
            h.update(bytes.fromhex(dig))
        assert combined_digest({"f": {"10,0": d2, "2,0": d1}}) == h.hexdigest()


# -- record schema ------------------------------------------------------------


class TestRecordValidation:
    def _fields(self):
        return {"phi": tiled_digests(np.ones((4, 4)), dim=2)}

    def test_valid_record_roundtrips_through_ledger(self, tmp_path):
        record = fingerprint_record(3, 0.15, self._fields())
        assert record["schema"] == "repro-fingerprint/1"
        ledger = FingerprintLedger(tmp_path / "fp.jsonl")
        ledger.append(record)
        assert ledger.load(strict=True) == [record]

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda r: r.update(schema="bogus/9"), "schema"),
            (lambda r: r.update(step=-1), "step"),
            (lambda r: r.update(step=True), "step"),
            (lambda r: r.update(time="soon"), "time"),
            (lambda r: r.update(fields={}), "fields"),
            (lambda r: r.update(fields={"phi": {}}), "missing or empty"),
            (
                lambda r: r["fields"]["phi"].update({"a,b": "0" * 32}),
                "block key",
            ),
            (
                lambda r: r["fields"]["phi"].update({"0,1": "XYZ"}),
                "hex digest",
            ),
        ],
    )
    def test_schema_violations_raise(self, mutate, match):
        record = fingerprint_record(1, 0.05, self._fields())
        mutate(record)
        with pytest.raises(FingerprintSchemaError, match=match):
            validate_fingerprint_record(record)

    def test_tampered_combined_digest_is_corruption(self):
        record = fingerprint_record(1, 0.05, self._fields())
        record["digest"] = "0" * 32
        with pytest.raises(FingerprintSchemaError, match="combined digest"):
            validate_fingerprint_record(record)

    def test_find_mismatches_in_traversal_order(self):
        d = digest_array(np.ones(2))
        e = digest_array(np.zeros(2))
        rec = {"fields": {"mu": {"0,0": d}, "phi": {"0,0": d, "1,0": d}}}
        ref = {"fields": {"mu": {"0,0": e}, "phi": {"0,0": d}}}
        out = find_mismatches(rec, ref)
        assert [(m["field"], m["block"]) for m in out] == [
            ("mu", "0,0"),
            ("phi", "1,0"),
        ]
        assert out[1]["expected"] is None  # present on one side only


# -- the live stream ----------------------------------------------------------


class TestFingerprintStream:
    def _state(self, seed=0):
        rng = np.random.default_rng(seed)
        return {"phi": rng.random((8, 8)), "mu": rng.random((8, 8))}

    def test_reruns_produce_byte_identical_ledgers(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            stream = FingerprintStream(path=path, metrics=False, trace=False)
            for step in range(3):
                stream.record_state(
                    step, step * 0.05, self._state(), dim=2, tile_shape=(4, 4)
                )
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert len(FingerprintLedger(paths[0]).load(strict=True)) == 3

    def test_construction_truncates_stale_ledger(self, tmp_path):
        path = tmp_path / "fp.jsonl"
        path.write_text('{"stale": true}\n')
        stream = FingerprintStream(path=path, metrics=False, trace=False)
        stream.record_state(0, 0.0, self._state(), dim=2)
        records = FingerprintLedger(path).load(strict=True)
        assert len(records) == 1 and records[0]["step"] == 0

    def test_audit_counts_matched_and_unmatched_steps(self, tmp_path):
        ref_path = tmp_path / "ref.jsonl"
        ref = FingerprintStream(path=ref_path, metrics=False, trace=False)
        for step in (0, 1):
            ref.record_state(step, step * 0.05, self._state(), dim=2)
        stream = FingerprintStream(
            reference=ref_path, health=HealthMonitor(policy="record"),
            metrics=False, trace=False,
        )
        for step in (0, 1, 7):  # 7 has no reference record
            stream.record_state(step, step * 0.05, self._state(), dim=2)
        assert stream.auditing
        assert (stream.matched, stream.unmatched) == (2, 1)
        assert stream.first_divergence is None
        assert "OK (2 matched, 1 unmatched steps)" in stream.summary()

    def test_divergence_names_step_field_block_and_raises(self, tmp_path):
        ref_path = tmp_path / "ref.jsonl"
        ref = FingerprintStream(path=ref_path, metrics=False, trace=False)
        for step in range(3):
            ref.record_state(
                step, step * 0.05, self._state(), dim=2, tile_shape=(4, 4)
            )
        # default health monitor is policy="raise"
        stream = FingerprintStream(reference=ref_path, metrics=False, trace=False)
        state = self._state()
        stream.record_state(0, 0.0, state, dim=2, tile_shape=(4, 4))
        state["mu"][6, 2] = np.nextafter(state["mu"][6, 2], np.inf)
        with pytest.raises(HealthError, match=r"mu.*block \(1,0\)"):
            stream.record_state(1, 0.05, state, dim=2, tile_shape=(4, 4))
        assert stream.first_divergence["step"] == 1
        assert stream.first_divergence["field"] == "mu"
        assert stream.first_divergence["block"] == "1,0"
        assert "DIVERGED at step 1 field mu block (1,0)" in stream.summary()

    def test_record_policy_and_divergence_counter(self, tmp_path):
        ref_path = tmp_path / "ref.jsonl"
        ref = FingerprintStream(path=ref_path, metrics=False, trace=False)
        ref.record_state(0, 0.0, self._state(seed=1), dim=2)
        mon = HealthMonitor(policy="record")
        stream = FingerprintStream(reference=ref_path, health=mon, trace=False)
        stream.record_state(0, 0.0, self._state(seed=2), dim=2)
        events = [e for e in mon.events if e.check == "divergence"]
        assert events and events[0].time_step == 0
        parsed = parse_prometheus(get_registry().to_prometheus())
        assert find_sample(
            parsed, "repro_fingerprint_divergence_total", field="mu"
        ) == 1
        assert find_sample(parsed, "repro_fingerprint_records_total") == 1
        assert find_sample(parsed, OVERHEAD_GAUGE) > 0

    def test_empty_reference_refused(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="missing or empty"):
            FingerprintStream(reference=tmp_path / "nope.jsonl")


# -- solver integration -------------------------------------------------------


class TestSolverFingerprints:
    def test_single_block_records_on_enable_and_every_step(
        self, binary_kernels, tmp_path
    ):
        params = binary_kernels.model.params
        phi0, _ = _front_init(params)
        solver = SingleBlockSolver(binary_kernels, (16, 8), boundary="periodic")
        solver.set_state(phi0, mu=0.0)
        path = tmp_path / "fp.jsonl"
        stream = solver.enable_fingerprints(every=2, path=path)
        solver.step(4)
        steps = [r["step"] for r in stream.records]
        assert steps == [0, 2, 4]
        assert solver.fingerprints is stream
        assert [r["step"] for r in FingerprintLedger(path).load()] == steps
        assert sorted(stream.records[0]["fields"]) == ["mu", "phi"]

    def test_rundir_default_path_and_manifest_inventory(
        self, binary_kernels, tmp_path
    ):
        params = binary_kernels.model.params
        phi0, _ = _front_init(params)
        rundir = RunDir(tmp_path / "run")
        solver = SingleBlockSolver(
            binary_kernels, (16, 8), boundary="periodic", rundir=rundir
        )
        solver.set_state(phi0, mu=0.0)
        solver.enable_fingerprints(every=1)
        solver.step(2)
        assert rundir.fingerprint_path.exists()
        manifest = rundir.write_manifest(status="complete")
        assert "fingerprints" in manifest["artifacts"]

    def test_stream_invariant_across_ranks_tiling_and_overlap(
        self, binary_kernels, tmp_path
    ):
        params = binary_kernels.model.params
        phi0, init = _front_init(params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)

        def dist_records(comm=None, overlap=False):
            solver = DistributedSolver(
                binary_kernels, forest, comm=comm, overlap=overlap
            )
            solver.set_state_from(init)
            stream = solver.enable_fingerprints(every=1)
            solver.step(3)
            return stream.records

        solo = dist_records()
        assert solo == dist_records(overlap=True)  # overlap on/off

        def prog(comm):
            return dist_records(comm=comm)

        per_rank = run_ranks(4, prog)
        assert all(r == solo for r in per_rank)  # 4 sim ranks, every rank

        single = SingleBlockSolver(binary_kernels, (16, 8), boundary="periodic")
        single.set_state(phi0, mu=0.0)
        stream = single.enable_fingerprints(
            every=1, tile_shape=forest.block_shape
        )
        single.step(3)
        assert stream.records == solo  # single block, tiled like the forest

    def test_diagnostics_on_or_off_leaves_stream_unchanged(
        self, binary_kernels, tmp_path
    ):
        params = binary_kernels.model.params
        phi0, _ = _front_init(params)
        records = []
        for with_diag in (False, True):
            solver = SingleBlockSolver(
                binary_kernels, (16, 8), boundary="periodic"
            )
            solver.set_state(phi0, mu=0.0)
            if with_diag:
                solver.enable_diagnostics(every=1, tile_shape=(4, 4))
            stream = solver.enable_fingerprints(every=1, tile_shape=(4, 4))
            solver.step(3)
            records.append(stream.records)
        assert records[0] == records[1]

    @pytest.mark.skipif(
        not process_backend_available(),
        reason="needs the fork start method and multiprocessing.shared_memory",
    )
    def test_process_backend_emits_identical_stream(self, binary_kernels):
        params = binary_kernels.model.params
        _, init = _front_init(params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)

        def prog(comm):
            solver = DistributedSolver(binary_kernels, forest, comm=comm)
            solver.set_state_from(init)
            stream = solver.enable_fingerprints(every=1)
            solver.step(2)
            return stream.records

        sim = launch_ranks(2, prog, backend="sim")
        proc = launch_ranks(
            2, prog, backend="process", recv_timeout=120, join_timeout=300
        )
        assert proc[0] == sim[0]
        assert proc[1] == sim[0]

    def test_single_ulp_perturbation_is_localized_exactly(
        self, binary_kernels, tmp_path
    ):
        params = binary_kernels.model.params
        phi0, init = _front_init(params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        ref_path = tmp_path / "ref.jsonl"

        reference = DistributedSolver(binary_kernels, forest, comm=None)
        reference.set_state_from(init)
        reference.enable_fingerprints(every=1, path=ref_path)
        reference.step(4)

        mon = HealthMonitor(policy="record")
        audited = SingleBlockSolver(
            binary_kernels, (16, 8), boundary="periodic", health=mon
        )
        audited.set_state(phi0, mu=0.0)

        def perturb(solver):
            if solver.time_step == 2:
                interior = solver._interior("phi")
                interior[5, 6] = np.nextafter(interior[5, 6], np.inf)

        audited.add_callback(perturb)
        stream = audited.enable_fingerprints(
            every=1, reference=ref_path, tile_shape=forest.block_shape
        )
        audited.step(4)

        # the flipped bit sits in interior cell (5, 6) -> 4x4 block (1, 1)
        assert stream.first_divergence["step"] == 2
        assert stream.first_divergence["field"] == "phi"
        assert stream.first_divergence["block"] == "1,1"
        events = [e for e in mon.events if e.check == "divergence"]
        assert events[0].time_step == 2 and events[0].field == "phi"
        assert "block (1,1)" in events[0].message
        assert stream.matched == 2  # steps 0 and 1 were still clean

    def test_unknown_field_and_bad_every_rejected(self, binary_kernels):
        solver = SingleBlockSolver(binary_kernels, (8, 8), boundary="periodic")
        with pytest.raises(ValueError, match="unknown field"):
            solver.enable_fingerprints(fields=("chi",))
        with pytest.raises(ValueError, match="every"):
            solver.enable_fingerprints(every=0)


# -- tools/divergence.py ------------------------------------------------------


class TestDivergenceTool:
    def _ledger(self, path, n_steps=4, perturb_step=None):
        rng = np.random.default_rng(7)
        states = [
            {"phi": rng.random((8, 8)), "mu": rng.random((8, 8))}
            for _ in range(n_steps)
        ]
        stream = FingerprintStream(path=path, metrics=False, trace=False)
        for step, state in enumerate(states):
            if step == perturb_step:
                state = {k: v.copy() for k, v in state.items()}
                state["phi"][2, 5] = np.nextafter(state["phi"][2, 5], np.inf)
            stream.record_state(
                step, step * 0.05, state, dim=2, tile_shape=(4, 4)
            )
        return path

    def test_first_divergence_localizes_step_field_block(self, tmp_path):
        divergence = _tools("divergence")
        a = self._ledger(tmp_path / "a.jsonl")
        b = self._ledger(tmp_path / "b.jsonl", perturb_step=2)
        records_a = FingerprintLedger(a).load()
        records_b = FingerprintLedger(b).load()
        assert divergence.first_divergence(records_a, records_a) is None
        div = divergence.first_divergence(records_a, records_b)
        assert (div["step"], div["field"], div["block"]) == (2, "phi", "0,1")
        assert div["n_mismatches"] == 1
        rows = divergence.context_rows(records_a, records_b, div["step"])
        assert [r["match"] for r in rows] == [True, True, False, True]

    def test_ulp_diff_counts_and_heatmap(self):
        divergence = _tools("divergence")
        a = np.linspace(0.1, 1.0, 64).reshape(8, 8)
        b = a.copy()
        b[3, 5] = np.nextafter(b[3, 5], np.inf)
        d = divergence.ulp_diff(a, b, heatmap_shape=(8, 8))
        assert d["max_ulp"] == 1 and d["mismatch_count"] == 1
        assert d["compared"] == 64 and d["nonfinite_mismatches"] == 0
        assert d["heatmap"][3][5] == 1
        assert sum(map(sum, d["heatmap"])) == 1

    def test_ulp_diff_nonfinite_and_signed_zero(self):
        divergence = _tools("divergence")
        a = np.array([0.0, 1.0, np.nan])
        b = np.array([-0.0, 1.0, 1.0])
        d = divergence.ulp_diff(a, b)
        assert d["max_ulp"] == 0  # -0.0 == 0.0 in ulp space
        assert d["nonfinite_mismatches"] == 1
        assert d["compared"] == 2

    def test_checkpoint_compare_finds_the_flipped_cell(self, tmp_path):
        divergence = _tools("divergence")
        rng = np.random.default_rng(3)
        phi = rng.random((16, 8))
        mu = rng.random((16, 8))
        phi_b = phi.copy()
        phi_b[9, 3] = np.nextafter(phi_b[9, 3], -np.inf)
        for name, arrs in (("a", (phi, mu)), ("b", (phi_b, mu))):
            cpdir = tmp_path / name / "checkpoints"
            cpdir.mkdir(parents=True)
            np.savez(
                cpdir / "step00000002.npz",
                phi=arrs[0], mu=arrs[1], time=0.1, time_step=2,
            )
        assert divergence.list_checkpoints(tmp_path / "a") == {
            2: [tmp_path / "a" / "checkpoints" / "step00000002.npz"]
        }
        assert divergence.nearest_checkpoint(tmp_path / "a", 5) == 2
        assert divergence.nearest_checkpoint(tmp_path / "a", 1) is None
        cmp_doc = divergence.compare_checkpoints(tmp_path / "a", tmp_path / "b", 2)
        assert cmp_doc["fields"]["phi"]["max_ulp"] == 1
        assert cmp_doc["fields"]["phi"]["mismatch_count"] == 1
        assert cmp_doc["fields"]["mu"]["max_ulp"] == 0

    def test_replay_compare_identical_solvers_is_zero_ulp(self, binary_kernels):
        divergence = _tools("divergence")
        params = binary_kernels.model.params
        phi0, _ = _front_init(params)

        def make():
            s = SingleBlockSolver(binary_kernels, (16, 8), boundary="periodic")
            s.set_state(phi0, mu=0.0)
            return s

        out = divergence.replay_compare(make(), make(), n_steps=2)
        assert out["phi"]["max_ulp"] == 0 and out["mu"]["max_ulp"] == 0

    def test_cli_exit_codes_and_json_document(self, tmp_path, capsys):
        divergence = _tools("divergence")
        a = self._ledger(tmp_path / "a.jsonl")
        b = self._ledger(tmp_path / "b.jsonl", perturb_step=1)
        assert divergence.main([str(a), str(a)]) == 0
        json_path = tmp_path / "div.json"
        assert divergence.main([str(a), str(b), "--json", str(json_path)]) == 1
        out = capsys.readouterr().out
        assert "FIRST DIVERGENCE at step 1" in out
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == "repro-divergence/1"
        assert doc["first_divergence"]["block"] == "0,1"
        assert divergence.main([str(a), str(tmp_path / "missing.jsonl")]) == 2


# -- check_observability and the HTML report ----------------------------------


class TestReportingSurfaces:
    def _audited_rundir(self, binary_kernels, tmp_path):
        params = binary_kernels.model.params
        phi0, _ = _front_init(params)
        rundir = RunDir(tmp_path / "run")
        solver = SingleBlockSolver(
            binary_kernels, (16, 8), boundary="periodic", rundir=rundir
        )
        solver.set_state(phi0, mu=0.0)
        solver.enable_fingerprints(every=1)
        solver.step(2)
        rundir.write_manifest(status="complete")
        return rundir

    def test_check_fingerprints_accepts_a_live_rundir(
        self, binary_kernels, tmp_path, capsys
    ):
        check = _tools("check_observability")
        rundir = self._audited_rundir(binary_kernels, tmp_path)
        check.check_fingerprints(rundir.path)
        out = capsys.readouterr().out
        assert "3 repro-fingerprint/1 record(s)" in out
        assert "steps 0..2" in out

    def test_check_fingerprints_failure_modes(self, tmp_path):
        check = _tools("check_observability")
        with pytest.raises(SystemExit):
            check.check_fingerprints(tmp_path)  # no ledger at all
        ledger = FingerprintLedger(tmp_path / "fingerprints.jsonl")
        fields = {"phi": tiled_digests(np.ones((4, 4)), dim=2)}
        ledger.append(fingerprint_record(2, 0.1, fields))
        ledger.append(fingerprint_record(1, 0.05, fields))  # non-monotone
        with pytest.raises(SystemExit):
            check.check_fingerprints(tmp_path)

    def test_run_report_renders_determinism_section(
        self, binary_kernels, tmp_path
    ):
        report = _tools("run_report")
        rundir = self._audited_rundir(binary_kernels, tmp_path)
        records = report.load_fingerprints(rundir.path)
        assert records and records[0]["step"] == 0
        html = report.section_determinism(records, None)
        assert "Determinism" in html
        assert "repro-fingerprint/1</code> records, steps 0..2" in html

        divergence = _tools("divergence")
        other = RunDir(tmp_path / "other")
        stream = FingerprintStream(
            path=other.fingerprint_path, metrics=False, trace=False
        )
        rng = np.random.default_rng(11)
        for step in range(3):
            stream.record_state(
                step, step * 0.05,
                {"phi": rng.random((14, 14)), "mu": rng.random((14, 14))},
                dim=2,
            )
        assert divergence.main([str(rundir.path), str(other.path)]) == 1
        doc = json.loads((rundir.path / "divergence.json").read_text())
        html = report.section_determinism(records, doc)
        assert "FIRST DIVERGENCE" in html

    def test_svg_heatmap_marks_hot_cells(self):
        report = _tools("run_report")
        svg = report.svg_heatmap([[0, 0], [0, 3]], label="phi")
        assert svg.startswith("<svg") and svg.count("<rect") == 4
        assert "153, 27, 27" in svg  # the nonzero cell is red
