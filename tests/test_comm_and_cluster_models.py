"""Unit tests for the communication cost model and cluster simulator."""

import numpy as np
import pytest

from repro.parallel import (
    ARIES_DRAGONFLY,
    OMNIPATH_FAT_TREE,
    ClusterModel,
    CommOptions,
    StepTimeModel,
)


def _step_model(**overrides):
    defaults = dict(
        compute_mlups=400.0,
        block_shape=(100, 100, 100),
        exchanged_doubles_per_cell=6.0,
        network=ARIES_DRAGONFLY,
    )
    defaults.update(overrides)
    return StepTimeModel(**defaults)


class TestStepTimeModel:
    def test_compute_time(self):
        m = _step_model()
        assert m.compute_time_s() == pytest.approx(1e6 / 400e6)

    def test_overlap_never_slower(self):
        on = _step_model(options=CommOptions(overlap=True))
        off = _step_model(options=CommOptions(overlap=False))
        assert on.step_time_s() <= off.step_time_s()

    def test_gpudirect_removes_staging(self):
        gd = _step_model(options=CommOptions(gpudirect=True))
        host = _step_model(options=CommOptions(gpudirect=False))
        h_gd, n_gd = gd.comm_time_parts_s()
        h_host, n_host = host.comm_time_parts_s()
        assert n_gd == 0.0 and n_host > 0.0
        assert h_gd == pytest.approx(h_host)

    def test_staging_not_hidden_by_overlap(self):
        """Table 2's key subtlety: overlap cannot hide host staging."""
        m = _step_model(options=CommOptions(overlap=True, gpudirect=False))
        _, non_hideable = m.comm_time_parts_s()
        assert m.step_time_s() >= m.compute_time_s() + non_hideable - 1e-12

    def test_parallel_efficiency_bounds(self):
        m = _step_model()
        eff = m.parallel_efficiency()
        assert 0.0 < eff <= 1.0

    def test_mlups_consistent(self):
        m = _step_model()
        assert m.mlups() == pytest.approx(1e6 / m.step_time_s() / 1e6)

    def test_small_blocks_comm_dominated(self):
        big = _step_model(block_shape=(200, 200, 200))
        small = _step_model(block_shape=(8, 8, 8))
        assert small.parallel_efficiency() < big.parallel_efficiency()

    def test_per_step_overhead(self):
        plain = _step_model()
        loaded = _step_model(
            options=CommOptions(per_step_overhead_us=5000.0)
        )
        assert loaded.step_time_s() >= plain.step_time_s() + 4e-3


class TestNetworkModel:
    def test_efficiency_decreases_with_scale(self):
        for net in (OMNIPATH_FAT_TREE, ARIES_DRAGONFLY):
            assert net.efficiency(1) >= net.efficiency(1024) >= net.efficiency(10**6)
            assert net.efficiency(10**6) >= 0.7

    def test_dragonfly_more_contended(self):
        ft = OMNIPATH_FAT_TREE.efficiency(4096)
        df = ARIES_DRAGONFLY.efficiency(4096)
        assert df <= ft


class TestClusterModel:
    def _cluster(self, **overrides):
        defaults = dict(
            name="test",
            network=OMNIPATH_FAT_TREE,
            ranks_per_node=48,
            rank_compute_mlups=8.0,
            exchanged_doubles_per_cell=6.0,
        )
        defaults.update(overrides)
        return ClusterModel(**defaults)

    def test_weak_scaling_flat(self):
        pts = self._cluster().weak_scaling((60, 60, 60), [48, 48 * 64, 48 * 4096])
        rates = [p.mlups_per_rank for p in pts]
        assert max(rates) / min(rates) < 1.1

    def test_strong_scaling_efficiency_monotone(self):
        cluster = self._cluster(
            options=CommOptions(per_step_overhead_us=500.0)
        )
        pts = cluster.strong_scaling((512, 256, 256), [48, 768, 152064])
        effs = [p.efficiency for p in pts]
        assert effs[0] > effs[-1]
        # aggregate throughput must still increase
        assert pts[-1].steps_per_second > pts[0].steps_per_second

    def test_inter_node_fraction_below_one(self):
        c = self._cluster()
        assert 0.0 < c._inter_node_fraction() < 1.0
        single = self._cluster(ranks_per_node=1)
        assert single._inter_node_fraction() == 1.0

    def test_with_options_copy(self):
        c = self._cluster()
        c2 = c.with_options(overlap=False)
        assert c.options.overlap and not c2.options.overlap
        assert c2.rank_compute_mlups == c.rank_compute_mlups
