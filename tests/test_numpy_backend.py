"""End-to-end tests of the NumPy backend: pipeline → executable kernel."""

import numpy as np
import pytest
import sympy as sp

from repro.backends import compile_numpy_kernel, create_arrays
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.ir import KernelConfig, create_kernel
from repro.symbolic import (
    Assignment,
    AssignmentCollection,
    EvolutionEquation,
    Field,
    PDESystem,
    div,
    grad,
    random_uniform,
    x_,
)


def make_heat_kernels(dim=2, variant="full", params=None):
    f = Field("f", dim)
    f_dst = Field("f_dst", dim)
    eq = EvolutionEquation(f.center(), div(grad(f.center())))
    system = PDESystem([eq], name="heat")
    disc = FiniteDifferenceDiscretization(dim=dim)
    result = discretize_system(system, f_dst, disc, variant=variant)
    cfg = KernelConfig(parameter_values=params)
    if variant == "full":
        return [create_kernel(result, cfg)], None
    flux_k = create_kernel(result.flux_kernel, cfg)
    main_k = create_kernel(result.main_kernel, cfg)
    return [flux_k, main_k], result.flux_field


def reference_heat_step(f, dt, h):
    """Hand-written 5-point explicit Euler step on the interior."""
    out = f.copy()
    lap = (
        f[2:, 1:-1] + f[:-2, 1:-1] + f[1:-1, 2:] + f[1:-1, :-2] - 4 * f[1:-1, 1:-1]
    ) / h**2
    out[1:-1, 1:-1] = f[1:-1, 1:-1] + dt * lap
    return out


class TestHeatEquation:
    def test_full_kernel_matches_reference(self):
        kernels, _ = make_heat_kernels()
        (k,) = kernels
        comp = compile_numpy_kernel(k)
        rng = np.random.default_rng(0)
        n = 12
        arrays = create_arrays(k.fields, (n, n), k.ghost_layers)
        arrays["f"][...] = rng.random(arrays["f"].shape)
        dt_v, h = 1e-3, 0.1
        expected = reference_heat_step(arrays["f"], dt_v, h)
        comp(arrays, dt=dt_v, dx_0=h, dx_1=h)
        np.testing.assert_allclose(arrays["f_dst"][1:-1, 1:-1], expected[1:-1, 1:-1], rtol=1e-12)

    def test_constant_folding_gives_same_result(self):
        dt_v, h = 1e-3, 0.1
        kernels, _ = make_heat_kernels(params={"dt": dt_v, "dx_0": h, "dx_1": h})
        (k,) = kernels
        assert not {p.name for p in k.parameters} & {"dt", "dx_0", "dx_1"}
        comp = compile_numpy_kernel(k)
        rng = np.random.default_rng(1)
        arrays = create_arrays(k.fields, (10, 10), k.ghost_layers)
        arrays["f"][...] = rng.random(arrays["f"].shape)
        expected = reference_heat_step(arrays["f"], dt_v, h)
        comp(arrays)
        np.testing.assert_allclose(arrays["f_dst"][1:-1, 1:-1], expected[1:-1, 1:-1], rtol=1e-12)

    def test_split_matches_full(self):
        rng = np.random.default_rng(2)
        n = 9
        init = rng.random((n + 2, n + 2))
        results = {}
        for variant in ("full", "split"):
            kernels, flux_field = make_heat_kernels(variant=variant)
            arrays = create_arrays(
                set().union(*(k.fields for k in kernels)), (n, n), 1
            )
            arrays["f"][...] = init
            for k in kernels:
                compile_numpy_kernel(k)(arrays, dt=1e-3, dx_0=0.1, dx_1=0.1)
            results[variant] = arrays["f_dst"][1:-1, 1:-1].copy()
        np.testing.assert_allclose(results["split"], results["full"], rtol=1e-13)

    def test_3d_heat(self):
        kernels, _ = make_heat_kernels(dim=3)
        (k,) = kernels
        comp = compile_numpy_kernel(k)
        rng = np.random.default_rng(3)
        arrays = create_arrays(k.fields, (6, 6, 6), 1)
        arrays["f"][...] = rng.random(arrays["f"].shape)
        f = arrays["f"]
        h, dt_v = 0.2, 1e-4
        lap = (
            f[2:, 1:-1, 1:-1] + f[:-2, 1:-1, 1:-1]
            + f[1:-1, 2:, 1:-1] + f[1:-1, :-2, 1:-1]
            + f[1:-1, 1:-1, 2:] + f[1:-1, 1:-1, :-2]
            - 6 * f[1:-1, 1:-1, 1:-1]
        ) / h**2
        expected = f[1:-1, 1:-1, 1:-1] + dt_v * lap
        comp(arrays, dt=dt_v, dx_0=h, dx_1=h, dx_2=h)
        np.testing.assert_allclose(arrays["f_dst"][1:-1, 1:-1, 1:-1], expected, rtol=1e-12)


class TestErrorHandling:
    def test_missing_array_raises(self):
        kernels, _ = make_heat_kernels()
        comp = compile_numpy_kernel(kernels[0])
        with pytest.raises(KeyError, match="missing arrays"):
            comp({"f": np.zeros((5, 5))}, dt=1e-3, dx_0=0.1, dx_1=0.1)

    def test_missing_param_raises(self):
        kernels, _ = make_heat_kernels()
        comp = compile_numpy_kernel(kernels[0])
        arrays = create_arrays(kernels[0].fields, (5, 5), 1)
        with pytest.raises(KeyError, match="missing kernel parameters"):
            comp(arrays, dt=1e-3)

    def test_shape_mismatch_raises(self):
        kernels, _ = make_heat_kernels()
        comp = compile_numpy_kernel(kernels[0])
        arrays = create_arrays(kernels[0].fields, (5, 5), 1)
        arrays["f_dst"] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="inconsistent spatial shapes"):
            comp(arrays, dt=1e-3, dx_0=0.1, dx_1=0.1)


class TestAnalyticCoordinates:
    def test_coordinate_dependent_source(self):
        """du/dt = x0 — coordinates must evaluate at cell centres."""
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        eq = EvolutionEquation(f.center(), x_[0])
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="src"), f_dst, disc)
        k = create_kernel(ac)
        comp = compile_numpy_kernel(k)
        n = 8
        arrays = create_arrays(k.fields, (n, n), 1)
        h, dt_v = 0.5, 1.0
        comp(arrays, dt=dt_v, dx_0=h, dx_1=h, ghost_layers=1)
        expected_col = (np.arange(n) + 0.5) * h
        np.testing.assert_allclose(
            arrays["f_dst"][1:-1, 1:-1], np.broadcast_to(expected_col[:, None] * dt_v, (n, n))
        )

    def test_block_offset_shifts_coordinates(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        eq = EvolutionEquation(f.center(), x_[1])
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="src"), f_dst, disc)
        k = create_kernel(ac)
        comp = compile_numpy_kernel(k)
        n = 4
        arrays = create_arrays(k.fields, (n, n), 1)
        comp(arrays, dt=1.0, dx_0=1.0, dx_1=1.0, block_offset=(0, 10), ghost_layers=1)
        expected_row = np.arange(n) + 10 + 0.5
        np.testing.assert_allclose(arrays["f_dst"][1:-1, 1:-1], np.tile(expected_row, (n, 1)))


class TestRandomKernels:
    def _rng_kernel(self):
        f = Field("f", 2)
        f_dst = Field("f_dst", 2)
        amp = sp.Symbol("amplitude", positive=True)
        eq = EvolutionEquation(f.center(), amp * random_uniform(-1, 1, stream=0))
        disc = FiniteDifferenceDiscretization(dim=2)
        ac = discretize_system(PDESystem([eq], name="noise"), f_dst, disc)
        return create_kernel(ac)

    def test_deterministic_per_timestep(self):
        k = self._rng_kernel()
        comp = compile_numpy_kernel(k)
        arrays = create_arrays(k.fields, (6, 6), 1)
        comp(arrays, dt=1.0, amplitude=1.0, time_step=3, seed=7)
        first = arrays["f_dst"].copy()
        comp(arrays, dt=1.0, amplitude=1.0, time_step=3, seed=7)
        np.testing.assert_array_equal(arrays["f_dst"], first)
        comp(arrays, dt=1.0, amplitude=1.0, time_step=4, seed=7)
        assert not np.array_equal(arrays["f_dst"], first)

    def test_block_offset_matches_global_run(self):
        """Fluctuations must be identical whether computed in one or two blocks."""
        k = self._rng_kernel()
        comp = compile_numpy_kernel(k)
        full = create_arrays(k.fields, (8, 4), 1)
        comp(full, dt=1.0, amplitude=1.0, time_step=1, seed=9)
        left = create_arrays(k.fields, (4, 4), 1)
        right = create_arrays(k.fields, (4, 4), 1)
        comp(left, dt=1.0, amplitude=1.0, time_step=1, seed=9, block_offset=(0, 0))
        comp(right, dt=1.0, amplitude=1.0, time_step=1, seed=9, block_offset=(4, 0))
        np.testing.assert_array_equal(full["f_dst"][1:5, 1:-1], left["f_dst"][1:-1, 1:-1])
        np.testing.assert_array_equal(full["f_dst"][5:9, 1:-1], right["f_dst"][1:-1, 1:-1])

    def test_amplitude_bounds(self):
        k = self._rng_kernel()
        comp = compile_numpy_kernel(k)
        arrays = create_arrays(k.fields, (16, 16), 1)
        comp(arrays, dt=1.0, amplitude=0.5, time_step=0, seed=0)
        interior = arrays["f_dst"][1:-1, 1:-1]
        assert np.all(interior >= -0.5) and np.all(interior < 0.5)
        assert interior.std() > 0.05


class TestApproximations:
    def test_fastmath_close_but_not_exact(self):
        f = Field("f", 2)
        g = Field("g", 2)
        ac = AssignmentCollection(
            [Assignment(g.center(), 1 / sp.sqrt(f.center()) + 1 / f.center())],
            name="fm",
        )
        exact = compile_numpy_kernel(create_kernel(ac))
        approx = compile_numpy_kernel(
            create_kernel(ac, KernelConfig(approximations=("division", "sqrt", "rsqrt")))
        )
        rng = np.random.default_rng(5)
        a1 = create_arrays([f, g], (8, 8), 1)
        a1["f"][...] = rng.random(a1["f"].shape) + 0.5
        a2 = {k: v.copy() for k, v in a1.items()}
        exact(a1)
        approx(a2)
        i1, i2 = a1["g"][1:-1, 1:-1], a2["g"][1:-1, 1:-1]
        np.testing.assert_allclose(i2, i1, rtol=1e-5)
        assert not np.array_equal(i1, i2)
