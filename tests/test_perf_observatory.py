"""Kernel performance observatory: counters, ledger, trends, detection.

The contract under test: a perf_event_open(2) harness that degrades
perf -> rusage -> time (each rung forcible, a forced rung never silently
degrades), per-kernel counter attribution through the profiler with an
explicit provenance line on every counter-bearing report, an append-only
``repro-perf/1`` JSONL history keyed by (bench, name, kernel fingerprint,
codegen options, host key), a trend tool that flags latest-vs-rolling-
baseline regressions in the right direction per metric, and /sys host
auto-detection whose key never includes the hostname.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.observability.hwcounters import (
    CHAIN,
    CounterHarness,
    CounterSample,
    attribute_dispatch,
    attribution_scope,
    counter_provenance_line,
    make_harness,
    perf_events_available,
    probe_capabilities,
    set_counter_harness,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.rundir import RunDir
from repro.perfmodel.ledger import (
    PerfLedger,
    PerfSchemaError,
    host_stanza,
    perf_record,
    series_key,
    validate_perf_record,
)
from repro.perfmodel.machine import (
    HASWELL_2690V3,
    detect_cache_hierarchy,
    detect_host,
    detect_machine,
    detect_physical_cores,
)
from repro.profiling import SolverProfiler


def _load_tool(name):
    path = Path(__file__).resolve().parents[1] / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def forced_harness():
    """Install a forced-rung harness process-wide; restore afterwards."""
    installed = []

    def install(rung):
        harness = make_harness(force=rung)
        installed.append(set_counter_harness(harness))
        return harness

    yield install
    while installed:
        set_counter_harness(installed.pop())


# -- the degradation chain ----------------------------------------------------


class TestDegradationChain:
    def test_chain_order(self):
        assert CHAIN == ("perf", "rusage", "time")

    def test_force_rusage(self):
        harness = make_harness(force="rusage")
        a = harness.sample()
        sum(range(20000))
        b = harness.sample()
        delta = harness.delta(a, b)
        assert harness.source == "rusage"
        assert delta.wall_seconds > 0
        assert delta.cpu_seconds is not None and delta.cpu_seconds >= 0
        assert delta.cycles is None and delta.instructions is None

    def test_force_time_populates_wall_only(self):
        harness = make_harness(force="time")
        delta = harness.delta(harness.sample(), harness.sample())
        assert delta.wall_seconds >= 0
        assert delta.cpu_seconds is None and delta.cache_misses is None
        assert harness.counter_names == ()

    def test_force_off_disables_sampling(self):
        harness = make_harness(force="off")
        assert not harness.active
        assert harness.sample() is None
        assert harness.delta(None, None) is None

    def test_forced_perf_never_silently_degrades(self):
        ok, _reason = perf_events_available()
        if ok:
            assert make_harness(force="perf").source == "perf"
        else:
            with pytest.raises(RuntimeError, match="perf_event_open failed"):
                make_harness(force="perf")

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown counter source"):
            make_harness(force="bogus")
        with pytest.raises(ValueError):
            CounterHarness("bogus")

    def test_env_var_forces_rung(self, monkeypatch):
        monkeypatch.setenv("REPRO_HWCOUNTERS", "time")
        assert make_harness().source == "time"
        monkeypatch.setenv("REPRO_HWCOUNTERS", "auto")
        assert make_harness().source in (*CHAIN, "off")

    def test_probe_selects_a_chain_rung(self):
        caps = probe_capabilities()
        assert caps["selected"] in CHAIN
        if not caps["perf"]:
            assert caps["selected"] in ("rusage", "time")

    def test_sample_overhead_is_bounded(self):
        harness = make_harness(force="rusage")
        n = 2000
        for _ in range(n):
            harness.sample()
        # the smoke bench gates at 5% of step wall; here just pin the
        # per-sample cost to an order of magnitude below a small kernel
        assert harness.overhead_seconds / n < 50e-6

    def test_publish_overhead_exports_gauge(self):
        harness = make_harness(force="rusage")
        harness.sample()
        registry = MetricsRegistry()
        value = harness.publish_overhead(registry)
        snapshot = json.dumps(registry.to_json())
        assert "repro_counter_overhead_seconds" in snapshot
        assert "rusage" in snapshot
        assert value == harness.overhead_seconds > 0

    def test_counter_sample_add_accumulates(self):
        a = CounterSample(1.0, 0.5, 2.0, 100.0)
        b = CounterSample(2.0, 0.25, 1.0, 50.0)
        total = a.add(b)
        assert total.wall_seconds == 3.0
        assert total.cpu_seconds == 0.75
        assert total.cycles == 150.0
        assert total.instructions is None


# -- provenance ----------------------------------------------------------------


class TestProvenance:
    def test_fallback_line_is_exact(self):
        line = counter_provenance_line(make_harness(force="rusage"))
        assert line == "counters: unavailable (fallback=rusage)"
        line = counter_provenance_line(make_harness(force="time"))
        assert line == "counters: unavailable (fallback=time)"

    def test_disabled_line(self):
        assert counter_provenance_line(make_harness(force="off")) == (
            "counters: disabled"
        )

    def test_profiler_report_carries_provenance(self, forced_harness):
        forced_harness("rusage")
        profiler = SolverProfiler()
        with profiler.measure("phi", cells=100):
            sum(range(1000))
        report = profiler.report()
        assert report.strip().endswith("counters: unavailable (fallback=rusage)")


# -- per-kernel attribution through the profiler -------------------------------


class TestAttribution:
    def test_measure_absorbs_counters(self, forced_harness):
        forced_harness("rusage")
        profiler = SolverProfiler()
        with profiler.measure("phi", cells=1000):
            sum(range(50000))
        rec = profiler.records["phi"]
        assert rec.calls == 1
        assert rec.cpu_seconds >= 0
        assert rec.counted_calls == 0       # rusage rung has no cycle counts

    def test_tight_dispatch_wins_over_outer_delta(self, forced_harness):
        forced_harness("rusage")
        profiler = SolverProfiler()
        tight = CounterSample(0.001, 0.001, 0.0, 4000.0, 8000.0)
        with profiler.measure("phi", cells=1000):
            sum(range(200000))              # outer cost the tight delta excludes
            attribute_dispatch(tight)
        rec = profiler.records["phi"]
        assert rec.cycles == 4000.0 and rec.instructions == 8000.0
        assert rec.cpu_seconds == pytest.approx(0.001)
        assert rec.counted_calls == 1
        assert rec.cycles_per_lup == pytest.approx(4.0)
        assert rec.ipc == pytest.approx(2.0)

    def test_multiple_dispatches_accumulate(self):
        with attribution_scope() as slot:
            attribute_dispatch(CounterSample(0.1, cycles=100.0))
            attribute_dispatch(CounterSample(0.2, cycles=50.0))
            attribute_dispatch(None)        # no-op, backends call unconditionally
        assert slot.sample.cycles == 150.0
        assert slot.sample.wall_seconds == pytest.approx(0.3)

    def test_dispatch_outside_scope_is_noop(self):
        attribute_dispatch(CounterSample(0.1, cycles=1.0))   # must not raise

    def test_merge_accumulates_counter_fields(self, forced_harness):
        forced_harness("rusage")
        a, b = SolverProfiler(), SolverProfiler()
        for profiler in (a, b):
            with profiler.measure("phi", cells=10):
                attribute_dispatch(CounterSample(0.1, 0.1, 0.0, 500.0))
        a.merge(b)
        rec = a.records["phi"]
        assert rec.cycles == 1000.0 and rec.counted_calls == 2

    def test_measured_bytes_per_lup_from_misses(self):
        from repro.profiling.profiler import TimingRecord

        rec = TimingRecord("phi", calls=1, seconds=1.0, cells=64)
        rec.cache_misses, rec.cycles = 16.0, 1.0
        assert rec.measured_bytes_per_lup(line_bytes=64) == pytest.approx(16.0)
        rec.cache_misses = 0.0
        assert rec.measured_bytes_per_lup() is None


# -- the repro-perf/1 ledger ---------------------------------------------------


def _record(bench="kernels", name="kernels/phi", mlups=10.0,
            fingerprint="f" * 16, options=None, timestamp="2026-08-08T00:00:00"):
    return perf_record(
        bench, name,
        measured={"mlups": mlups, "mean_seconds": 1.0 / mlups,
                  "counter_source": "rusage"},
        predicted={"mlups": mlups * 2},
        kernel={"name": "phi", "fingerprint": fingerprint},
        options=options or {"backend": "c"},
        timestamp=timestamp,
    )


class TestPerfLedger:
    def test_round_trip(self, tmp_path):
        ledger = PerfLedger(tmp_path / "deep" / "history.jsonl")
        assert ledger.load() == []
        written = ledger.extend([_record(mlups=10.0), _record(mlups=11.0)])
        assert written == 2
        loaded = ledger.load(strict=True)
        assert [r["measured"]["mlups"] for r in loaded] == [10.0, 11.0]
        assert all(r["schema"] == "repro-perf/1" for r in loaded)
        assert all(r["host"]["key"] == host_stanza()["key"] for r in loaded)

    def test_append_only(self, tmp_path):
        ledger = PerfLedger(tmp_path / "h.jsonl")
        ledger.append(_record(mlups=1.0))
        ledger.append(_record(mlups=2.0))
        assert len(ledger.path.read_text().splitlines()) == 2

    def test_series_keying(self, tmp_path):
        ledger = PerfLedger(tmp_path / "h.jsonl")
        ledger.extend([
            _record(mlups=10.0),
            _record(mlups=11.0),
            _record(fingerprint="a" * 16),              # new kernel variant
            _record(options={"backend": "numpy"}),      # new codegen options
            _record(name="kernels/mu"),                 # different kernel
        ])
        series = ledger.series()
        assert len(series) == 4
        lengths = sorted(len(records) for records in series.values())
        assert lengths == [1, 1, 1, 2]
        for key in series:
            assert len(key) == 5

    def test_host_key_excludes_hostname(self):
        stanza = host_stanza()
        record = _record()
        assert record["host"]["key"] == stanza["key"]
        # tampering with the hostname must not move the record to a new
        # series: the key hashes hardware identity only
        tampered = json.loads(json.dumps(record))
        tampered["host"]["hostname"] = "some-other-ci-container"
        assert series_key(tampered) == series_key(record)

    def test_invalid_records_rejected(self):
        with pytest.raises(PerfSchemaError, match="not finite"):
            perf_record("b", "n", measured={"mlups": math.nan})
        with pytest.raises(PerfSchemaError, match="fingerprint"):
            perf_record("b", "n", measured={"mlups": 1.0},
                        kernel={"name": "phi"})
        with pytest.raises(PerfSchemaError, match="schema"):
            validate_perf_record({"schema": "repro-bench/1"})
        with pytest.raises(PerfSchemaError, match="measured"):
            validate_perf_record({**_record(), "measured": {}})

    def test_torn_tail_tolerated(self, tmp_path):
        ledger = PerfLedger(tmp_path / "h.jsonl")
        ledger.extend([_record(mlups=10.0), _record(mlups=11.0)])
        with open(ledger.path, "a") as fh:
            fh.write('{"schema": "repro-perf/1", "bench": "ker')   # torn write
        assert len(ledger.load()) == 2
        assert len(ledger.load(strict=True)) == 2   # torn tail always forgiven

    def test_strict_raises_on_malformed_middle_line(self, tmp_path):
        ledger = PerfLedger(tmp_path / "h.jsonl")
        ledger.append(_record())
        with open(ledger.path, "a") as fh:
            fh.write('{"schema": "wrong"}\n')
        ledger.append(_record())
        assert len(ledger.load()) == 2              # lenient: skip bad line
        with pytest.raises(PerfSchemaError, match="h.jsonl:2"):
            ledger.load(strict=True)

    def test_rundir_perf_artifact(self, tmp_path):
        rundir = RunDir(tmp_path / "run", config={})
        assert rundir.perf_path == rundir.perf_dir / "perf.jsonl"
        PerfLedger(rundir.perf_path).append(_record())
        rundir.write_manifest(status="ok")
        artifacts = rundir.artifacts()
        assert "perf" in artifacts and artifacts["perf"] == ["perf.jsonl"]
        assert len(PerfLedger(rundir.perf_path).load(strict=True)) == 1


# -- records_from_profiler: the measured-vs-predicted join --------------------


class TestRecordsFromProfiler:
    def test_solver_export(self, tmp_path, forced_harness):
        forced_harness("rusage")
        from repro.perfmodel.ledger import records_from_profiler
        from repro.pfm import (
            GrandPotentialModel,
            SingleBlockSolver,
            make_two_phase_binary,
            planar_front,
        )

        params = make_two_phase_binary(dim=2)
        kernels = GrandPotentialModel(params).create_kernels()
        shape = (16, 16)
        solver = SingleBlockSolver(kernels, shape)
        solver.set_state(
            planar_front(shape, params.n_phases, 0, 1, position=6.0,
                         epsilon=params.epsilon),
            mu=0.0,
        )
        solver.step(3)
        records = records_from_profiler(
            "unit", kernels.all_kernels, solver.profiler,
            block_shape=shape, options={"backend": solver.backend},
        )
        assert records, "profiled kernels must produce perf records"
        by_name = {r["name"]: r for r in records}
        assert any(name.startswith("kernels/") for name in by_name)
        for record in records:
            validate_perf_record(record)
            assert record["kernel"]["fingerprint"]
            assert record["measured"]["mlups"] > 0
            assert record["measured"]["counter_source"] == "rusage"
            assert record["measured"]["cycles_per_lup"] is None
            assert record["predicted"]["mlups"] > 0
        ledger = PerfLedger(tmp_path / "h.jsonl")
        ledger.extend(records)
        assert len(ledger.series()) == len(records)


# -- perf_trend: regressions against a rolling baseline ------------------------


class TestPerfTrend:
    def _history(self, tmp_path, mlups_values, **kwargs):
        ledger = PerfLedger(tmp_path / "history.jsonl")
        ledger.extend(
            _record(mlups=v, timestamp=f"2026-08-0{i + 1}T00:00:00", **kwargs)
            for i, v in enumerate(mlups_values)
        )
        return ledger

    def test_regression_flagged_with_direction(self, tmp_path):
        trend = _load_tool("perf_trend")
        ledger = self._history(tmp_path, [10.0, 10.0, 10.0, 10.0, 10.0, 7.0])
        regressions = trend.find_regressions(
            ledger.series(), threshold=0.15, window=5, min_history=3
        )
        metrics = {r["metric"]: r for r in regressions}
        # mlups dropped 30% (higher-is-better) and mean_seconds rose ~43%
        # (lower-is-better): both directions must flag
        assert metrics["mlups"]["change"] == pytest.approx(0.30)
        assert metrics["mean_seconds"]["change"] == pytest.approx(3 / 7)

    def test_improvement_not_flagged(self, tmp_path):
        trend = _load_tool("perf_trend")
        ledger = self._history(tmp_path, [10.0, 10.0, 10.0, 14.0])
        assert trend.find_regressions(
            ledger.series(), threshold=0.15, window=5, min_history=3
        ) == []

    def test_short_series_skipped(self, tmp_path):
        trend = _load_tool("perf_trend")
        ledger = self._history(tmp_path, [10.0, 5.0])
        assert trend.find_regressions(
            ledger.series(), threshold=0.15, window=5, min_history=3
        ) == []

    def test_cli_exit_codes_and_html(self, tmp_path, capsys):
        trend = _load_tool("perf_trend")
        ledger = self._history(tmp_path, [10.0, 10.0, 10.0, 10.0, 10.0, 7.0])
        out = tmp_path / "trend.html"
        argv = ["--history", str(ledger.path), "--out", str(out)]
        assert trend.main(argv) == 1                      # regression
        assert trend.main([*argv, "--warn-only"]) == 0    # warn-only passes
        html = out.read_text()
        assert "<svg" in html and "Regressions" in html
        assert "kernels/kernels/phi" in html or "kernels/phi" in html
        capsys.readouterr()

    def test_cli_missing_history_is_ok(self, tmp_path, capsys):
        trend = _load_tool("perf_trend")
        code = trend.main(["--history", str(tmp_path / "absent.jsonl"),
                           "--out", str(tmp_path / "t.html")])
        assert code == 0
        capsys.readouterr()

    def test_cli_invalid_history_fails(self, tmp_path, capsys):
        trend = _load_tool("perf_trend")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "wrong"}\n\n')
        code = trend.main(["--history", str(bad),
                           "--out", str(tmp_path / "t.html")])
        assert code == 2
        capsys.readouterr()


# -- host auto-detection -------------------------------------------------------


class TestHostDetection:
    def test_physical_cores(self):
        cores, detected = detect_physical_cores()
        assert isinstance(cores, int) and cores >= 1
        assert isinstance(detected, bool)

    def test_cache_hierarchy(self):
        levels, line_bytes, detected = detect_cache_hierarchy()
        assert levels and all(size > 0 for _name, size in levels)
        sizes = [size for _name, size in levels]
        assert sizes == sorted(sizes), "cache sizes must grow outwards"
        assert line_bytes in (32, 64, 128, 256)
        assert isinstance(detected, bool)

    def test_host_stanza_fields_and_stability(self):
        host = detect_host()
        for field in ("cpu_model", "arch", "physical_cores", "caches",
                      "cache_line_bytes", "hostname", "key"):
            assert field in host
        assert len(host["key"]) == 16
        assert detect_host()["key"] == host["key"], "key must be deterministic"

    def test_detect_machine_overrides_base(self):
        machine = detect_machine()
        assert machine.cores_per_socket >= 1
        assert machine.cache_line_bytes >= 32
        assert machine.cache_levels, "must keep a cache hierarchy"
        assert machine.cache_levels[-1].shared, "last level stays shared"
        # clock and bandwidth keep the base values: no portable way to
        # read sustained AVX clock or saturated bandwidth from /sys
        assert machine.clock_ghz == HASWELL_2690V3.clock_ghz
        assert machine.mem_bandwidth_gbs == HASWELL_2690V3.mem_bandwidth_gbs
