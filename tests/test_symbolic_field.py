"""Unit tests for fields and field accesses."""

import pickle

import pytest
import sympy as sp

from repro.symbolic import Field, FieldAccess, fields


class TestFieldConstruction:
    def test_basic(self):
        f = Field("f", spatial_dimensions=3)
        assert f.spatial_dimensions == 3
        assert f.index_shape == ()
        assert f.index_dimensions == 0

    def test_index_shape(self):
        phi = Field("phi", spatial_dimensions=3, index_shape=(4,))
        assert phi.index_dimensions == 1

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Field("f", spatial_dimensions=5)

    def test_equality_and_hash(self):
        a = Field("f", 3, (2,))
        b = Field("f", 3, (2,))
        assert a == b and hash(a) == hash(b)
        assert a != Field("g", 3, (2,))


class TestFieldAccess:
    def test_center(self):
        f = Field("f", 2)
        acc = f.center()
        assert acc.offsets == (0, 0)
        assert acc.index == ()
        assert acc.field == f

    def test_getitem_offsets(self):
        phi = Field("phi", 3, (4,))
        acc = phi[1, 0, -1](2)
        assert acc.offsets == (1, 0, -1)
        assert acc.index == (2,)

    def test_scalar_offset_view_arithmetic(self):
        f = Field("f", 2)
        expr = f[1, 0] - f[-1, 0]
        accs = sorted(expr.atoms(FieldAccess), key=lambda a: a.name)
        assert len(accs) == 2

    def test_same_access_unifies(self):
        f = Field("f", 3)
        assert f[1, 0, 0]() == f.neighbor(0, 1)
        expr = f[1, 0, 0]() + f.neighbor(0, 1)
        assert expr == 2 * f[1, 0, 0]()

    def test_distinct_accesses_distinct(self):
        phi = Field("phi", 3, (4,))
        assert phi.center(0) != phi.center(1)
        assert phi.center(0) != phi[1, 0, 0](0)

    def test_index_bounds_checked(self):
        phi = Field("phi", 3, (4,))
        with pytest.raises(IndexError):
            phi.center(4)

    def test_index_arity_checked(self):
        phi = Field("phi", 3, (4,))
        with pytest.raises(ValueError):
            phi.center()
        with pytest.raises(ValueError):
            phi.center(0, 0)

    def test_shifted(self):
        f = Field("f", 3)
        acc = f.center().shifted(1, 1).shifted(1, 1)
        assert acc.offsets == (0, 2, 0)

    def test_staggered_position(self):
        f = Field("f", 3)
        half = f.center().shifted(0, sp.Rational(1, 2))
        assert half.is_staggered_position
        assert not f.center().is_staggered_position

    def test_max_abs_offset(self):
        f = Field("f", 3)
        assert f[2, -3, 0]().max_abs_offset == 3
        assert f.center().max_abs_offset == 0

    def test_usable_in_sympy(self):
        f = Field("f", 2)
        e = sp.sqrt(f.center() ** 2 + 1)
        assert f.center() in e.free_symbols
        assert e.diff(f.center()) == f.center() / sp.sqrt(f.center() ** 2 + 1)

    def test_pickle_roundtrip(self):
        phi = Field("phi", 3, (4,))
        acc = phi[1, 0, 0](2)
        acc2 = pickle.loads(pickle.dumps(acc))
        assert acc2 == acc
        assert acc2.offsets == acc.offsets and acc2.index == acc.index

    def test_accesses_iteration(self):
        phi = Field("phi", 2, (2, 3))
        assert len(list(phi.accesses())) == 6


class TestFieldsFactory:
    def test_paper_syntax(self):
        phi, mu = fields("phi(4), mu(2): double[3D]")
        assert phi.index_shape == (4,)
        assert mu.index_shape == (2,)
        assert phi.spatial_dimensions == 3
        assert phi.dtype == "double"

    def test_scalar_2d(self):
        f = fields("f: double[2D]")
        assert f.spatial_dimensions == 2
        assert f.index_shape == ()

    def test_default_dtype_and_dim(self):
        g = fields("g")
        assert g.dtype == "double" and g.spatial_dimensions == 3


class TestFieldNameCollisions:
    def test_same_name_different_shape_stay_distinct(self):
        """Two models may both call their phase field "phi" (e.g. P1 with 4
        phases and P2 with 3); their accesses must never unify through the
        sympy symbol cache."""
        phi4 = Field("phi", 3, (4,))
        phi3 = Field("phi", 3, (3,))
        a4 = phi4.center(0)
        a3 = phi3.center(0)
        assert a4 != a3
        assert a4.field.index_shape == (4,)
        assert a3.field.index_shape == (3,)
        # re-creating the first access must still carry the original field
        again = phi4.center(0)
        assert again.field.index_shape == (4,)

    def test_equal_fields_still_unify(self):
        a = Field("u", 2, (2,)).center(1)
        b = Field("u", 2, (2,)).center(1)
        assert a == b and (a + b) == 2 * a
