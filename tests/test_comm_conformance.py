"""Communicator conformance: one behavioral contract, every backend.

The distributed stack is written against one communicator interface; these
tests pin its *semantics* — value-copying sends, self-transfers, sendrecv,
the collectives, and deadlock diagnosis — and run the identical programs on
the thread-backed simulator and the process-backed runtime.  A backend that
passes this suite can be swapped under :class:`DistributedSolver` without
re-validating the solver.

``MPI4PyComm`` joins for the single-rank subset on ``COMM_SELF`` when
mpi4py is installed (a plain pytest process is a one-rank MPI world; the
multi-rank subset needs ``mpirun`` and is covered by the adapter's design
instead).
"""

import numpy as np
import pytest

from repro.parallel.mpi_adapter import mpi4py_available
from repro.parallel.mpi_sim import RankError, run_ranks
from repro.parallel.proc_comm import process_backend_available, run_ranks_processes

BACKENDS = [
    "sim",
    pytest.param(
        "process",
        marks=pytest.mark.skipif(
            not process_backend_available(),
            reason="needs fork + multiprocessing.shared_memory",
        ),
    ),
]


def run_spmd(backend, size, prog, **kwargs):
    if backend == "sim":
        return run_ranks(size, prog, **kwargs)
    return run_ranks_processes(size, prog, **kwargs)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPointToPoint:
    def test_send_recv_copies_values(self, backend):
        def prog(comm):
            if comm.rank == 0:
                data = np.arange(8, dtype=np.float64)
                comm.send(data, 1, tag=0)
                data[:] = -1.0  # receiver must see the values at send time
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0, tag=0).tolist()

        assert run_spmd(backend, 2, prog)[1] == list(range(8))

    def test_self_transfer_buffers_in_order(self, backend):
        def prog(comm):
            comm.send("first", comm.rank, tag=1)
            comm.send("second", comm.rank, tag=1)
            comm.send(np.ones(3), comm.rank, tag=2)
            a = comm.recv(comm.rank, tag=1)
            b = comm.recv(comm.rank, tag=1)
            c = comm.recv(comm.rank, tag=2)
            return a, b, float(c.sum())

        assert run_spmd(backend, 2, prog) == [("first", "second", 3.0)] * 2

    def test_self_recv_without_send_is_immediate_deadlock(self, backend):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(0, tag=0)
            return None

        with pytest.raises(RankError, match="immediate deadlock"):
            run_spmd(backend, 2, prog, recv_timeout=30.0)

    def test_sendrecv_exchanges_between_pairs(self, backend):
        def prog(comm):
            other = 1 - comm.rank
            return comm.sendrecv(f"from-{comm.rank}", dest=other, source=other)

        assert run_spmd(backend, 2, prog) == ["from-1", "from-0"]

    def test_rich_tuple_tags_are_distinct_channels(self, backend):
        def prog(comm):
            if comm.rank == 0:
                comm.send("phi-msg", 1, tag=("phi", 0, -1))
                comm.send("mu-msg", 1, tag=("mu", 0, -1))
                return None
            # receive in the opposite order: tags, not arrival order, match
            mu = comm.recv(0, tag=("mu", 0, -1))
            phi = comm.recv(0, tag=("phi", 0, -1))
            return mu, phi

        assert run_spmd(backend, 2, prog)[1] == ("mu-msg", "phi-msg")

    def test_invalid_rank_rejected(self, backend):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.send("x", 5)
            with pytest.raises(ValueError):
                comm.recv(-1)
            return True

        assert run_spmd(backend, 2, prog) == [True, True]

    def test_recv_timeout_error_names_channel(self, backend):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=("never", 9))
            else:
                comm.recv(0, tag="also-never")
            return None

        with pytest.raises(RankError) as err:
            run_spmd(backend, 2, prog, recv_timeout=1.0, join_timeout=60.0)
        message = str(err.value)
        assert "source=" in message
        assert "dest=" in message
        assert "tag=" in message


@pytest.mark.parametrize("backend", BACKENDS)
class TestNonBlocking:
    def test_isend_completes_immediately(self, backend):
        def prog(comm):
            req = comm.isend("payload", 1 - comm.rank, tag=0)
            done, _ = req.test()
            got = comm.recv(1 - comm.rank, tag=0)
            return done, got

        assert run_spmd(backend, 2, prog) == [(True, "payload")] * 2

    def test_irecv_wait_delivers(self, backend):
        def prog(comm):
            other = 1 - comm.rank
            req = comm.irecv(other, tag=3)
            comm.send(comm.rank * 10, other, tag=3)
            return req.wait()

        assert run_spmd(backend, 2, prog) == [10, 0]

    def test_irecv_test_polls_without_blocking(self, backend):
        import time

        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=5)
                t0 = time.perf_counter()
                early, _ = req.test()
                elapsed = time.perf_counter() - t0
                comm.send("go", 1, tag=6)
                while True:
                    done, value = req.test()
                    if done:
                        return early, elapsed, value
                    time.sleep(0.001)
            comm.recv(0, tag=6)
            comm.send("late-payload", 0, tag=5)
            return None

        early, elapsed, value = run_spmd(backend, 2, prog, recv_timeout=30.0)[0]
        assert early is False
        assert elapsed < 1.0
        assert value == "late-payload"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", [2, 3])
class TestCollectives:
    def test_bcast(self, backend, size):
        def prog(comm):
            return comm.bcast({"n": 7} if comm.rank == 0 else None, root=0)

        assert run_spmd(backend, size, prog) == [{"n": 7}] * size

    def test_gather_root_only(self, backend, size):
        def prog(comm):
            return comm.gather(comm.rank**2, root=0)

        results = run_spmd(backend, size, prog)
        assert results[0] == [r**2 for r in range(size)]
        assert all(r is None for r in results[1:])

    def test_allgather(self, backend, size):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + r) for r in range(size)]
        assert run_spmd(backend, size, prog) == [expected] * size

    def test_allreduce_ops(self, backend, size):
        def prog(comm):
            return (
                comm.allreduce(float(comm.rank + 1), op="sum"),
                comm.allreduce(comm.rank, op="max"),
                comm.allreduce(comm.rank, op="min"),
            )

        total = float(sum(range(1, size + 1)))
        assert run_spmd(backend, size, prog) == [(total, size - 1, 0)] * size

    def test_allreduce_sum_is_rank_ordered(self, backend, size):
        # the reduction must be the fixed sequence v0 + v1 + ... (not a
        # tree): cross-backend bit-identity of diagnostics depends on it
        def prog(comm):
            values = [1e16, 1.0, -1e16]
            mine = values[comm.rank % 3]
            return comm.allreduce(mine, op="sum")

        values = [1e16, 1.0, -1e16]
        expected = values[0]
        for r in range(1, size):
            expected = expected + values[r % 3]
        results = run_spmd(backend, size, prog)
        assert all(r == expected for r in results)

    def test_allreduce_unknown_op_raises(self, backend, size):
        def prog(comm):
            with pytest.raises(ValueError, match="unknown reduction"):
                comm.allreduce(1.0, op="median")
            return True

        assert all(run_spmd(backend, size, prog))


@pytest.mark.parametrize("backend", BACKENDS)
class TestBarrier:
    def test_barrier_synchronizes(self, backend):
        def prog(comm):
            import time

            if comm.rank == 0:
                time.sleep(0.05)
            comm.barrier()
            return True

        assert run_spmd(backend, 3, prog) == [True] * 3


@pytest.mark.skipif(not mpi4py_available(), reason="mpi4py not installed")
class TestMPI4PySelfConformance:
    """Single-rank subset on COMM_SELF (pytest is a 1-rank MPI world)."""

    @pytest.fixture()
    def comm(self):
        from mpi4py import MPI

        from repro.parallel.mpi_adapter import MPI4PyComm

        return MPI4PyComm(MPI.COMM_SELF)

    def test_rank_and_size(self, comm):
        assert comm.rank == 0
        assert comm.size == 1

    def test_self_send_recv(self, comm):
        data = np.arange(6, dtype=np.float64)
        comm.send(data, 0, tag=("phi", 0, -1))
        data[:] = -1.0
        got = comm.recv(0, tag=("phi", 0, -1))
        assert got.tolist() == list(range(6))

    def test_sendrecv_self(self, comm):
        assert comm.sendrecv("x", dest=0, source=0) == "x"

    def test_collectives_size_one(self, comm):
        assert comm.bcast("data") == "data"
        assert comm.gather(5) == [5]
        assert comm.allgather("a") == ["a"]
        assert comm.allreduce(2.5) == 2.5

    def test_large_irecv_roundtrip(self, comm):
        # mpi4py's default pickled-irecv buffer is ~32 KiB; the adapter
        # pre-sizes it, so a real ghost-layer-scale array must round-trip
        big = np.random.default_rng(0).random((512, 512))  # 2 MiB
        comm.send(big, 0, tag=1)
        req = comm.irecv(0, tag=1)
        got = req.wait()
        np.testing.assert_array_equal(got, big)
