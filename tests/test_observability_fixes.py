"""Observability hardening riding along with the diagnostics PR (tier-1).

Edge cases in the rank-trace merger (empty input, span-less ranks,
duplicate rank ids), Prometheus exposition-format escaping round-trips
with pathological label values, per-check health event counters carrying
the rank-bearing ``where``, counter events flowing into single- and
multi-rank Chrome traces, and the ``bench_regress`` missing-baseline
behavior (clear exit-2 message, ``--record-if-missing``).
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.observability import (
    BenchWriter,
    HealthMonitor,
    MetricsRegistry,
    Tracer,
    find_sample,
    get_registry,
    merge_rank_traces,
    parse_prometheus,
    reset_metrics,
)


@pytest.fixture(autouse=True)
def _clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


def _bench_regress():
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))
    try:
        import bench_regress
    finally:
        sys.path.pop(0)
    return bench_regress


# -- merge_rank_traces edge cases --------------------------------------------


class TestMergeRankTraces:
    def test_empty_list_raises(self):
        with pytest.raises(ValueError, match="no tracers"):
            merge_rank_traces([])

    def test_zero_span_rank_still_gets_a_track(self):
        busy = Tracer(rank=0)
        with busy.span("op", category="runtime"):
            pass
        idle = Tracer(rank=1)  # e.g. a rank that owned no blocks
        doc = merge_rank_traces([busy, idle])
        events = doc["traceEvents"]
        process_names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert process_names == {"rank 0", "rank 1"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0}

    def test_duplicate_rank_ids_raise(self):
        a, b = Tracer(rank=2), Tracer(rank=2)
        for t in (a, b):
            with t.span("op", category="runtime"):
                pass
        with pytest.raises(ValueError, match="duplicate rank ids.*2"):
            merge_rank_traces([a, b])

    def test_counter_events_merge_per_rank(self):
        tracers = []
        for rank in range(2):
            t = Tracer(rank=rank)
            with t.span("step", category="runtime"):
                pass
            t.add_counter(
                "diagnostics", {"free_energy": float(10 - rank)},
                category="physics",
            )
            tracers.append(t)
        doc = merge_rank_traces(tracers)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {e["pid"] for e in counters} == {0, 1}
        assert all(e["ts"] >= 0 and "free_energy" in e["args"] for e in counters)


# -- prometheus escaping ------------------------------------------------------


class TestPrometheusEscaping:
    def test_pathological_label_round_trip(self):
        registry = MetricsRegistry()
        # a generated-kernel name with every character that needs escaping
        evil = 'mu_sweep\\v2\n"D3C7"'
        registry.counter("repro_op_calls_total", "ops", op=evil).inc(3)
        registry.gauge("repro_kernel_mlups", "rate", kernel=evil).set(1.5)
        text = registry.to_prometheus()
        assert "\n\n" not in text.strip()  # escaped newline must not split lines
        parsed = parse_prometheus(text)
        assert find_sample(parsed, "repro_op_calls_total", op=evil) == 3
        assert find_sample(parsed, "repro_kernel_mlups", kernel=evil) == 1.5

    def test_label_keys_shadowing_parameters(self):
        registry = MetricsRegistry()
        # "name" and "help" are valid Prometheus label keys and must not
        # collide with the method parameters
        registry.gauge("repro_diagnostic", "value", name="free_energy").set(2.0)
        parsed = parse_prometheus(registry.to_prometheus())
        assert find_sample(parsed, "repro_diagnostic", name="free_energy") == 2.0

    def test_unknown_escape_kept_verbatim(self):
        text = (
            "# TYPE f counter\n"
            'f{a="x\\qy"} 1\n'
        )
        parsed = parse_prometheus(text)
        (_, labels, value) = parsed["f"]["samples"][0]
        assert labels["a"] == "x\\qy" and value == 1


# -- health events: per-check counter + where --------------------------------


class TestHealthEventAttribution:
    def test_counter_and_where_for_field_checks(self):
        monitor = HealthMonitor(policy="record")
        bad = np.array([[1.0, np.nan]])
        monitor.check({"phi": bad}, 7, where="rank 3 block (0, 1)")
        assert monitor.events[0].where == "rank 3 block (0, 1)"
        parsed = parse_prometheus(get_registry().to_prometheus())
        assert find_sample(
            parsed, "repro_health_events_total", check="nan", field="phi"
        ) == 1

    def test_counter_and_where_for_invariant_checks(self):
        monitor = HealthMonitor(policy="record", conservation_tol=1e-12)
        monitor.check_diagnostics(
            {"solute_mass_0": 1.0}, 0,
            mass_names=("solute_mass_0",), where="rank 1",
        )
        monitor.check_diagnostics(
            {"solute_mass_0": 1.1}, 1,
            mass_names=("solute_mass_0",), where="rank 1",
        )
        (event,) = monitor.events
        assert event.check == "conservation" and event.where == "rank 1"
        parsed = parse_prometheus(get_registry().to_prometheus())
        assert find_sample(
            parsed, "repro_health_events_total",
            check="conservation", field="solute_mass_0",
        ) == 1

    def test_energy_decay_ignores_nonfinite(self):
        monitor = HealthMonitor(policy="raise")
        monitor.check_diagnostics(
            {"free_energy": 1.0}, 0, energy_name="free_energy"
        )
        # NaN is the nan-watchdog's business, not the invariant's
        monitor.check_diagnostics(
            {"free_energy": float("nan")}, 1, energy_name="free_energy"
        )
        assert monitor.healthy


# -- bench_regress missing-baseline behavior ---------------------------------


class TestBenchRegressMissingBaseline:
    @pytest.fixture()
    def bench(self, tmp_path):
        writer = BenchWriter("scaling")
        writer.add("run", params={"ranks": 2}, mlups=50.0)
        path = tmp_path / "BENCH_scaling.json"
        writer.write(path)
        return path

    def test_missing_baseline_exits_2_with_hint(self, bench, tmp_path, capsys):
        bench_regress = _bench_regress()
        missing = tmp_path / "nope" / "baseline.json"
        rc = bench_regress.main(
            ["compare", str(bench), "--baseline", str(missing)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and "--record-if-missing" in err

    def test_record_if_missing_bootstraps_baseline(self, bench, tmp_path):
        bench_regress = _bench_regress()
        baseline = tmp_path / "baseline.json"
        assert bench_regress.main(
            ["compare", str(bench), "--baseline", str(baseline),
             "--record-if-missing"]
        ) == 0
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == "repro-bench-baseline/1"
        # second run compares normally against the recorded baseline
        assert bench_regress.main(
            ["compare", str(bench), "--baseline", str(baseline),
             "--record-if-missing"]
        ) == 0

    def test_malformed_baseline_record_is_schema_error(self, bench, tmp_path):
        bench_regress = _bench_regress()
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": "repro-bench-baseline/1",
            "suite": "scaling",
            "records": [{"name": "run"}],  # metrics mapping missing
        }))
        assert bench_regress.main(
            ["compare", str(bench), "--baseline", str(baseline)]
        ) == 2
