"""Tests for the extension features: Dirichlet walls, instruction tables,
VTK output, benchmark mode and variant selection."""

import numpy as np
import pytest

from repro.parallel import DirichletValue, fill_ghosts


class TestDirichletBoundary:
    def test_midpoint_holds_value(self):
        arr = np.full((8, 6), 1.0)
        fill_ghosts(arr, 1, 2, mode=(DirichletValue(0.25), "periodic"))
        # wall value = (ghost + first interior) / 2
        np.testing.assert_allclose((arr[0, 1:-1] + arr[1, 1:-1]) / 2, 0.25)
        np.testing.assert_allclose((arr[-1, 1:-1] + arr[-2, 1:-1]) / 2, 0.25)

    def test_two_ghost_layers_mirror(self):
        arr = np.tile(np.arange(10.0)[:, None], (1, 8))
        fill_ghosts(arr, 2, 2, mode=(DirichletValue(1.0), "neumann"))
        np.testing.assert_allclose(arr[0, 2:-2], 2.0 - 3.0)
        np.testing.assert_allclose(arr[1, 2:-2], 2.0 - 2.0)
        np.testing.assert_allclose(arr[-1, 2:-2], 2.0 - 6.0)
        np.testing.assert_allclose(arr[-2, 2:-2], 2.0 - 7.0)

    def test_vector_valued_dirichlet(self):
        arr = np.zeros((6, 6, 3))
        arr[1:-1, 1:-1] = 0.5
        wall = np.array([1.0, 0.0, 0.0])
        fill_ghosts(arr, 1, 2, mode=(DirichletValue(wall), "periodic"))
        np.testing.assert_allclose(arr[0, 1:-1, 0], 2 * 1.0 - 0.5)
        np.testing.assert_allclose(arr[0, 1:-1, 1], -0.5)

    def test_dirichlet_heat_steady_state(self):
        """Heat equation with T=0 / T=1 walls converges to a linear profile."""
        from repro.backends import compile_numpy_kernel, create_arrays
        from repro.discretization import (
            FiniteDifferenceDiscretization,
            discretize_system,
        )
        from repro.ir import create_kernel
        from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad

        f = Field("f_dbc", 1)
        f_dst = Field("f_dbc_dst", 1)
        eq = EvolutionEquation(f.center(), div(grad(f.center())))
        ac = discretize_system(
            PDESystem([eq], name="dbc"), f_dst, FiniteDifferenceDiscretization(dim=1)
        )
        k = compile_numpy_kernel(create_kernel(ac))
        n = 16
        arrays = create_arrays([f, f_dst], (n,), 1)

        class TwoSided:
            pass

        for _ in range(3000):
            # left wall 0, right wall 1: use per-side values by filling twice
            fill_ghosts(arrays["f_dbc"], 1, 1, mode=(DirichletValue(0.0),))
            arrays["f_dbc"][-1] = 2 * 1.0 - arrays["f_dbc"][-2]
            k(arrays, dt=0.2, dx_0=1.0)
            arrays["f_dbc"], arrays["f_dbc_dst"] = arrays["f_dbc_dst"], arrays["f_dbc"]
        x = (np.arange(n) + 0.5) / n
        np.testing.assert_allclose(arrays["f_dbc"][1:-1], x, atol=1e-6)


class TestInstructionTables:
    def test_skylake_matches_paper_weights(self):
        from repro.perfmodel import weights_for

        w = weights_for("skylake")
        assert w["adds"] == 1.0 and w["muls"] == 1.0
        assert w["divs"] == 16.0
        assert w["sqrts"] == 10.0   # approximate sqrt on AVX-512
        assert w["rsqrts"] == 2.0   # rsqrt14

    def test_haswell_lacks_rsqrt_approximation(self):
        from repro.perfmodel import weights_for

        w = weights_for("haswell")
        assert w["rsqrts"] > 10, "no DP rsqrt approximation on AVX2"
        assert w["divs"] >= 16

    def test_unknown_arch(self):
        from repro.perfmodel import weights_for

        with pytest.raises(KeyError):
            weights_for("itanium")

    def test_weights_feed_opcount(self):
        from repro.perfmodel import OperationCount, weights_for

        oc = OperationCount(adds=10, muls=5, rsqrts=2)
        skl = oc.normalized_flops(weights_for("skylake"))
        hsw = oc.normalized_flops(weights_for("haswell"))
        assert hsw > skl  # rsqrts are expensive without the approximation


class TestVTKOutput:
    def test_structured_points_file(self, tmp_path):
        from repro.analysis import write_vtk

        phi = np.zeros((4, 3, 2))
        phi[0, 0, 0] = 1.0
        p = write_vtk(tmp_path / "out.vtk", {"phi0": phi}, spacing=0.5)
        text = p.read_text()
        assert "DATASET STRUCTURED_POINTS" in text
        assert "DIMENSIONS 5 4 3" in text
        assert "CELL_DATA 24" in text
        assert "SCALARS phi0 double 1" in text
        # first value (x fastest) is our [0,0,0] entry
        data_lines = text.split("LOOKUP_TABLE default\n")[1].splitlines()
        assert float(data_lines[0]) == 1.0

    def test_vector_field_split(self, tmp_path):
        from repro.analysis import write_vtk

        u = np.random.default_rng(0).random((4, 4, 1, 2))
        p = write_vtk(tmp_path / "vec.vtk", {"u": u})
        text = p.read_text()
        assert "SCALARS u_0 double 1" in text and "SCALARS u_1 double 1" in text

    def test_2d_promoted(self, tmp_path):
        from repro.analysis import write_vtk

        p = write_vtk(tmp_path / "f.vtk", {"f": np.ones((3, 3))})
        assert "DIMENSIONS 4 4 2" in p.read_text()

    def test_shape_mismatch_rejected(self, tmp_path):
        from repro.analysis import write_vtk

        with pytest.raises(ValueError, match="shape"):
            write_vtk(
                tmp_path / "bad.vtk",
                {"a": np.ones((3, 3, 3)), "b": np.ones((4, 4, 4))},
            )


class TestBenchmarkMode:
    @pytest.fixture(scope="class")
    def heat_kernel(self):
        from repro.discretization import (
            FiniteDifferenceDiscretization,
            discretize_system,
        )
        from repro.ir import KernelConfig, create_kernel
        from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad

        f = Field("f_bm", 3)
        f_dst = Field("f_bm_dst", 3)
        eq = EvolutionEquation(f.center(), div(grad(f.center())))
        ac = discretize_system(
            PDESystem([eq], name="bm_heat"),
            f_dst,
            FiniteDifferenceDiscretization(dim=3),
        )
        return create_kernel(
            ac, KernelConfig(parameter_values={"dt": 0.1, "dx_0": 1, "dx_1": 1, "dx_2": 1})
        )

    def test_source_structure(self, heat_kernel):
        from repro.perfmodel import generate_benchmark_source

        src = generate_benchmark_source(heat_kernel, (16, 16, 16))
        assert "int main(void)" in src
        assert "seconds_per_sweep=" in src
        assert "clock_gettime" in src

    def test_measurement_runs(self, heat_kernel):
        from repro.backends.c_backend import c_compiler_available
        from repro.perfmodel import measure_kernel

        if not c_compiler_available():
            pytest.skip("no C compiler")
        perf = measure_kernel(heat_kernel, (32, 32, 32), iterations=3, repeats=2)
        assert perf.mlups > 1.0, "heat stencil should exceed 1 MLUP/s"
        assert perf.seconds_per_sweep > 0
        assert perf.cycles_per_lup(2.3) > 0


class TestVariantSelection:
    def test_model_based_selection(self):
        from repro.perfmodel import select_variants
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        model = GrandPotentialModel(make_two_phase_binary(dim=2))
        report = select_variants(model, block_shape=(60, 60), mode="model")
        assert report.chosen_phi in ("full", "split")
        assert report.chosen_mu in ("full", "split")
        assert report.kernel_set.variant_phi == report.chosen_phi
        assert len(report.ratings) == 4
        assert "variant selection" in report.summary()

    def test_invalid_mode(self):
        from repro.perfmodel import select_variants
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        model = GrandPotentialModel(make_two_phase_binary(dim=2))
        with pytest.raises(ValueError, match="mode"):
            select_variants(model, mode="guess")


class TestPerformanceReport:
    def test_report_contents(self):
        from repro.discretization import (
            FiniteDifferenceDiscretization,
            discretize_system,
        )
        from repro.ir import KernelConfig, create_kernel
        from repro.perfmodel import performance_report
        from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad

        f = Field("f_rep", 3)
        f_dst = Field("f_rep_dst", 3)
        eq = EvolutionEquation(f.center(), div(grad(f.center())))
        ac = discretize_system(
            PDESystem([eq], name="rep"), f_dst, FiniteDifferenceDiscretization(dim=3)
        )
        k = create_kernel(
            ac, KernelConfig(parameter_values={"dt": 0.1, "dx_0": 1, "dx_1": 1, "dx_2": 1})
        )
        text = performance_report(k, gpu=True)
        for needle in (
            "operation counts",
            "layer conditions",
            "ECM model",
            "roofline",
            "recommended blocking",
            "GPU (Tesla P100",
        ):
            assert needle in text, f"missing section: {needle}"


class TestSolverSteering:
    @pytest.fixture(scope="class")
    def kernels(self):
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        return GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()

    def test_callbacks_fire(self, kernels):
        from repro.pfm import SingleBlockSolver, planar_front

        s = SingleBlockSolver(kernels, (12, 8))
        s.set_state(planar_front((12, 8), 2, 0, 1, 4.0, 4.0), mu=0.0)
        seen = []
        s.add_callback(lambda sv: seen.append(sv.time_step), every=3)
        s.step(9)
        assert seen == [3, 6, 9]

    def test_callback_can_steer(self, kernels):
        """Computational steering: a callback may modify the live state."""
        from repro.pfm import SingleBlockSolver, planar_front

        s = SingleBlockSolver(kernels, (12, 8))
        s.set_state(planar_front((12, 8), 2, 0, 1, 4.0, 4.0), mu=0.0)

        def freeze(sv):
            sv.mu[...] = 0.0  # clamp the chemical potential

        s.add_callback(freeze, every=1)
        s.step(5)
        np.testing.assert_allclose(s.mu, 0.0)

    def test_invalid_interval(self, kernels):
        from repro.pfm import SingleBlockSolver

        s = SingleBlockSolver(kernels, (12, 8))
        with pytest.raises(ValueError):
            s.add_callback(lambda sv: None, every=0)

    def test_checkpoint_roundtrip(self, kernels, tmp_path):
        from repro.pfm import SingleBlockSolver, planar_front

        s1 = SingleBlockSolver(kernels, (12, 8))
        s1.set_state(planar_front((12, 8), 2, 0, 1, 4.0, 4.0), mu=0.0)
        s1.step(7)
        s1.save_checkpoint(tmp_path / "ckpt.npz")
        s1.step(5)

        s2 = SingleBlockSolver(kernels, (12, 8))
        s2.load_checkpoint(tmp_path / "ckpt.npz")
        assert s2.time_step == 7
        s2.step(5)
        np.testing.assert_array_equal(s2.phi, s1.phi)
        np.testing.assert_array_equal(s2.mu, s1.mu)
