"""Communication hiding: iteration subspaces, asynchronous ghost exchange,
the overlapped distributed schedule, and the satellite bugfixes (mirror
Neumann walls, distributed checkpoints, SimComm self-transfers)."""

import numpy as np
import pytest

from repro.ir import frontier_spaces, interior_space, split_interior_frontier
from repro.parallel import (
    BlockForest,
    DistributedSolver,
    GhostExchange,
    RankError,
    run_ranks,
)
from repro.parallel.boundary import fill_ghosts
from repro.parallel.ghostlayer import exchange_field
from repro.parallel.mpi_sim import _Router


@pytest.fixture(scope="module")
def kernels():
    from repro.pfm import GrandPotentialModel, make_two_phase_binary

    params = make_two_phase_binary(dim=2)
    params.fluctuation_amplitude = 0.02  # exercise the global Philox counters
    return GrandPotentialModel(params).create_kernels()


def _initializer(params, shape=(16, 8)):
    from repro.pfm import planar_front

    def init(offset, block_shape):
        full = planar_front(
            shape, params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, block_shape))
        return full[sl], 0.0

    return init


class TestIterationSubspaces:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("margin", [1, 2])
    def test_interior_and_frontiers_tile_exactly_once(self, dim, margin):
        shape = (7, 6, 5)[:dim]
        cover = np.zeros(shape, dtype=int)
        spaces = [interior_space(dim, margin), *frontier_spaces(dim, margin)]
        assert len(spaces) == 1 + 2 * dim
        for space in spaces:
            sl = tuple(slice(lo, hi) for lo, hi in space.concrete(shape))
            cover[sl] += 1
        np.testing.assert_array_equal(cover, np.ones(shape, dtype=int))

    def test_too_small_block_raises(self, kernels):
        space = interior_space(2, 3)
        with pytest.raises(ValueError, match="too small"):
            space.concrete((4, 4))

    def test_reduction_kernels_refuse_restriction(self, kernels):
        from repro.diagnostics import DiagnosticsSuite

        suite = DiagnosticsSuite.for_model(kernels.model)
        red = suite.kernel
        with pytest.raises(ValueError, match="summation order"):
            red.restricted(interior_space(red.dim, 1))

    @pytest.mark.parametrize("backend", ["numpy", "c"])
    def test_split_matches_full_kernel_bitwise(self, kernels, backend):
        """Interior + frontier variants reproduce the full sweep exactly,
        through both backends, at the native and a widened ghost frame."""
        from repro.backends.c_backend import c_compiler_available
        from repro.backends.numpy_backend import create_arrays

        if backend == "c" and not c_compiler_available():
            pytest.skip("no C compiler")
        from repro.profiling import compile_cached

        shape = (10, 6)
        rng = np.random.default_rng(3)
        for kernel in kernels.mu_kernels:
            for gl in (max(kernel.ghost_layers, 1), max(kernel.ghost_layers, 1) + 1):
                base = create_arrays(kernels.fields, shape, gl)
                for arr in base.values():
                    arr[...] = rng.random(arr.shape)
                full = {k: v.copy() for k, v in base.items()}
                split = {k: v.copy() for k, v in base.items()}
                kw = dict(
                    ghost_layers=gl, block_offset=(0,) * kernel.dim,
                    t=0.0, time_step=0, seed=1,
                )
                compile_cached(kernel, backend)(full, **kw)
                interior, frontiers = split_interior_frontier(kernel)
                for part in (interior, *frontiers):
                    compile_cached(part, backend)(split, **kw)
                for name in base:
                    np.testing.assert_array_equal(split[name], full[name])


class TestGhostExchange:
    @staticmethod
    def _make_blocks(forest, owners, rank, gl):
        rng = np.random.default_rng(11)  # same stream on every rank
        blocks = {}
        for coords in forest.all_block_coords():
            shape = tuple(s + 2 * gl for s in forest.block_shape)
            arr = rng.standard_normal(shape)
            if owners[coords] == rank:
                blocks[coords] = type("B", (), {"arrays": {"phi": arr}})()
        return blocks

    @pytest.mark.parametrize("periodic", [True, False])
    @pytest.mark.parametrize("gl", [1, 2])
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_matches_synchronous_exchange_bitwise(self, periodic, gl, n_ranks):
        def prog(comm):
            forest = BlockForest((8, 8), (4, 4), periodic=periodic)
            owners = forest.owner_map(comm.size)
            a = self._make_blocks(forest, owners, comm.rank, gl)
            b = self._make_blocks(forest, owners, comm.rank, gl)
            ex = GhostExchange(a, forest, owners, comm, "phi", gl)
            ex.start()
            ex.finish()
            exchange_field(b, forest, owners, comm, "phi", gl)
            for c in a:
                np.testing.assert_array_equal(
                    a[c].arrays["phi"], b[c].arrays["phi"]
                )
            return True

        assert all(run_ranks(n_ranks, prog))

    def test_finish_requires_start_and_runs_once(self):
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        owners = forest.owner_map(1)
        blocks = self._make_blocks(forest, owners, 0, 1)
        ex = GhostExchange(blocks, forest, owners, None, "phi", 1)
        with pytest.raises(RuntimeError, match="never started"):
            ex.finish()
        ex.start()
        with pytest.raises(RuntimeError, match="already started"):
            ex.start()
        ex.finish()
        with pytest.raises(RuntimeError, match="already finished"):
            ex.finish()

    def test_missing_peer_raises_named_rank_error(self):
        """A finish() whose peer never sends fails with the channel named."""

        def prog(comm):
            forest = BlockForest((8, 4), (4, 4), periodic=True)
            owners = forest.owner_map(comm.size)
            blocks = self._make_blocks(forest, owners, comm.rank, 1)
            if comm.rank == 1:
                return True  # never participates in the exchange
            ex = GhostExchange(blocks, forest, owners, comm, "phi", 1)
            ex.start()
            ex.finish()  # waits on rank 1 forever
            return True

        with pytest.raises(RankError, match=r"source=1.*dest=0.*tag=.*phi"):
            run_ranks(2, prog, recv_timeout=0.3)


class TestSimCommSelfTransfers:
    def test_self_send_recv_fifo_and_value_semantics(self):
        def prog(comm):
            data = np.arange(4.0)
            comm.send(data, comm.rank, tag="t")
            data[0] = -1.0  # buffered copy must be unaffected
            comm.send("second", comm.rank, tag="t")
            first = comm.recv(comm.rank, tag="t")
            assert first[0] == 0.0
            assert comm.recv(comm.rank, tag="t") == "second"
            return True

        assert all(run_ranks(2, prog))

    def test_empty_self_recv_fails_immediately(self):
        def prog(comm):
            with pytest.raises(RankError, match="immediate deadlock"):
                comm.recv(comm.rank, tag="nothing")
            return True

        assert all(run_ranks(1, prog, recv_timeout=30.0))

    def test_router_rejects_self_channels(self):
        router = _Router(2)
        with pytest.raises(RuntimeError, match="must not enqueue to itself"):
            router.channel(1, 1, "t")

    def test_collectives_still_work_through_bypass(self):
        def prog(comm):
            assert comm.bcast(comm.rank == 0 and "x" or None, root=0) == "x"
            return comm.allgather(comm.rank)

        assert run_ranks(3, prog) == [[0, 1, 2]] * 3


class TestNeumannMirror:
    @pytest.mark.parametrize("gl", [1, 2])
    def test_fill_ghosts_mirrors(self, gl):
        n = 4 + 2 * gl
        arr = np.zeros((n,))
        arr[gl:-gl] = np.arange(4.0) + 1.0
        fill_ghosts(arr, gl, 1, mode="neumann")
        # ghost layer `layer` mirrors interior layer `2gl-1-layer`
        for layer in range(gl):
            assert arr[layer] == arr[2 * gl - 1 - layer]
            assert arr[n - 1 - layer] == arr[n - 2 * gl + layer]

    def test_distributed_gl2_matches_single_block(self, kernels):
        """End-to-end regression for the unified mirror scheme: a gl=2
        Neumann-wall run agrees bitwise with the gl=1 single-block run
        (the kernels read one ghost layer deep; mirror layer 2gl-1-layer
        puts the same value there for every gl)."""
        from repro.pfm import SingleBlockSolver, planar_front

        params = kernels.model.params
        shape = (8, 8)
        phi0 = planar_front(
            shape, params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
        )
        single = SingleBlockSolver(kernels, shape, boundary="neumann", seed=3)
        single.set_state(phi0, 0.0)
        single.step(4)

        for gl in (None, 2):
            forest = BlockForest(shape, (4, 4), periodic=False)
            dist = DistributedSolver(
                kernels, forest, wall_mode="neumann", seed=3, ghost_layers=gl
            )
            dist.set_state_from(_initializer(params, shape))
            dist.step(4)
            np.testing.assert_array_equal(dist.gather("phi"), single.phi)
            np.testing.assert_array_equal(dist.gather("mu"), single.mu)

    def test_single_block_gl2_matches_gl1(self, kernels):
        from repro.pfm import SingleBlockSolver, planar_front

        params = kernels.model.params
        shape = (8, 8)
        phi0 = planar_front(
            shape, params.n_phases, 0, 1, position=3.0, epsilon=params.epsilon
        )
        runs = []
        for gl in (None, 2):
            s = SingleBlockSolver(
                kernels, shape, boundary="neumann", seed=3, ghost_layers=gl
            )
            s.set_state(phi0, 0.0)
            s.step(4)
            runs.append((s.phi.copy(), s.mu.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])


class TestOverlappedSchedule:
    @pytest.mark.parametrize("n_ranks", [1, 4])
    @pytest.mark.parametrize("gl", [None, 2])
    def test_bit_identical_to_synchronous_and_single_block(
        self, kernels, n_ranks, gl
    ):
        params = kernels.model.params
        init = _initializer(params)

        ref = DistributedSolver(kernels, BlockForest((16, 8), (16, 8)), seed=7)
        ref.set_state_from(init)
        ref.step(4)
        ref_phi, ref_mu = ref.gather("phi"), ref.gather("mu")

        forest = BlockForest((16, 8), (4, 4), periodic=True)

        def prog(comm, overlap):
            solver = DistributedSolver(
                kernels, forest, comm=comm, seed=7, overlap=overlap,
                ghost_layers=gl,
            )
            solver.set_state_from(init)
            solver.step(4)
            return solver.gather("phi"), solver.gather("mu")

        sync_phi, sync_mu = run_ranks(n_ranks, prog, False)[0]
        over_phi, over_mu = run_ranks(n_ranks, prog, True)[0]
        np.testing.assert_array_equal(over_phi, sync_phi)
        np.testing.assert_array_equal(over_mu, sync_mu)
        np.testing.assert_array_equal(over_phi, ref_phi)
        np.testing.assert_array_equal(over_mu, ref_mu)

    def test_neumann_overlap_matches_sync(self, kernels):
        params = kernels.model.params
        forest = BlockForest((8, 8), (4, 4), periodic=False)

        def run(overlap):
            s = DistributedSolver(
                kernels, forest, wall_mode="neumann", seed=5, overlap=overlap
            )
            s.set_state_from(_initializer(params, (8, 8)))
            s.step(4)
            return s.gather("phi"), s.gather("mu")

        sync, over = run(False), run(True)
        np.testing.assert_array_equal(over[0], sync[0])
        np.testing.assert_array_equal(over[1], sync[1])

    def test_spans_and_profiler_records(self, kernels):
        params = kernels.model.params
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernels, forest, seed=7, overlap=True)
        solver.set_state_from(_initializer(params))
        solver.step(2)
        solver.gather("phi")  # drains the deferred µ exchange
        names = set(solver.profiler.records)
        assert "mu:interior" in names
        assert {f"mu:frontier_a{a}{s}" for a in (0, 1) for s in ("lo", "hi")} <= names
        assert "exchange:phi_dst:wait" in names
        assert "exchange:mu_dst:wait" in names
        # interior + frontier cells account for exactly one full µ sweep
        mu_cells = sum(
            r.cells for n, r in solver.profiler.records.items()
            if n == "mu:interior" or n.startswith("mu:frontier")
        )
        phi_cells = solver.profiler.records["phi"].cells
        assert mu_cells == phi_cells
        report = solver.scaling_report()
        assert "communication-hiding closure" in report

    def test_overlap_rejects_too_small_blocks(self, kernels):
        forest = BlockForest((2, 2), (1, 1), periodic=True)
        with pytest.raises(ValueError, match="overlap requires blocks"):
            DistributedSolver(kernels, forest, overlap=True)

    def test_ghost_layers_below_requirement_rejected(self, kernels):
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        with pytest.raises(ValueError, match="below the kernel set"):
            DistributedSolver(kernels, forest, ghost_layers=0)


class TestDistributedCheckpoint:
    @pytest.mark.parametrize("n_ranks", [1, 4])
    def test_restart_equals_uninterrupted(self, kernels, n_ranks, tmp_path):
        params = kernels.model.params
        init = _initializer(params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        base = tmp_path / "ckpt"

        def prog(comm):
            solver = DistributedSolver(kernels, forest, comm=comm, seed=7,
                                       overlap=True)
            solver.set_state_from(init)
            solver.step(3)
            solver.save_checkpoint(base)
            solver.step(3)  # uninterrupted continuation
            straight = solver.gather("phi"), solver.gather("mu")

            resumed = DistributedSolver(kernels, forest, comm=comm, seed=7,
                                        overlap=True)
            resumed.load_checkpoint(base)
            assert resumed.time_step == 3
            resumed.step(3)
            restart = resumed.gather("phi"), resumed.gather("mu")
            return straight, restart

        (straight, restart) = run_ranks(n_ranks, prog)[0]
        np.testing.assert_array_equal(restart[0], straight[0])
        np.testing.assert_array_equal(restart[1], straight[1])

    def test_per_block_files_written(self, kernels, tmp_path):
        params = kernels.model.params
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernels, forest, seed=1)
        solver.set_state_from(_initializer(params, (8, 8)))
        written = solver.save_checkpoint(tmp_path / "state")
        assert len(written) == 4
        names = sorted(p.name for p in map(type(written[0]), written))
        assert names == [
            "state.block_0_0.npz",
            "state.block_0_1.npz",
            "state.block_1_0.npz",
            "state.block_1_1.npz",
        ]

    def test_inconsistent_blocks_rejected(self, kernels, tmp_path):
        params = kernels.model.params
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernels, forest, seed=1)
        solver.set_state_from(_initializer(params, (8, 8)))
        solver.save_checkpoint(tmp_path / "state")
        solver.step(1)
        # overwrite one block's file from a later step
        coords = sorted(solver.blocks)[0]
        from repro.analysis.io import snapshot_path

        solver2 = DistributedSolver(kernels, forest, seed=1)
        base = snapshot_path(tmp_path / "state")
        gl = solver.ghost_layers
        sl = (slice(gl, -gl),) * 2
        from repro.analysis.io import save_snapshot

        save_snapshot(
            solver._block_checkpoint_path(base, coords),
            solver.blocks[coords].arrays["phi"][sl].copy(),
            solver.blocks[coords].arrays["mu"][sl].copy(),
            solver.time,
            solver.time_step,
        )
        with pytest.raises(ValueError, match="inconsistent per-block"):
            solver2.load_checkpoint(tmp_path / "state")
