"""Quantitative physics validation of the generated kernels.

These tests validate the *symbolic derivation* itself (not just backend
parity) against independently known solutions:

* with uniform phase fields the µ equation must reduce to pure diffusion
  with the analytically known coefficient M/χ — the decay rate of a sine
  mode is checked against the exact semi-discrete solution,
* a relaxed planar interface is a fixed point of the φ kernel,
* without bulk driving, a solid disk shrinks monotonically under curvature
  (interfacial energy decreases).
"""

import numpy as np
import pytest

from repro.pfm import (
    GrandPotentialModel,
    ModelParameters,
    SingleBlockSolver,
    add_seed,
    constant_temperature,
    make_two_phase_binary,
    planar_front,
)
from repro.pfm.parameters import _phase


@pytest.fixture(scope="module")
def binary_kernels():
    return GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()


class TestMuDiffusionLimit:
    def test_sine_mode_decay_matches_analytic_coefficient(self, binary_kernels):
        """Pure liquid, µ = sin(kx): ∂tµ = (M/χ) ∇²µ with M/χ = D_liquid.

        For the binary parameterization: χ = −2A·h(1) = 1, M = D_l·(−2A_l)·
        g(1) = D_l, so the effective diffusivity is exactly D_l = 1.0.
        The check uses the exact *semi-discrete* decay of the 3-point
        Laplacian, so only time-stepping error (O(dt), tiny here) remains.
        """
        params = binary_kernels.model.params
        n = 32
        solver = SingleBlockSolver(binary_kernels, (n, 4), boundary="periodic")
        phi0 = np.zeros((n, 4, 2))
        phi0[..., 1] = 1.0  # pure liquid
        solver.set_state(phi0, mu=0.0)
        k = 2 * np.pi / n
        x = np.arange(n) + 0.5
        mu0 = 1e-3 * np.sin(k * x)
        solver.mu[..., 0] = mu0[:, None]
        solver._fill("mu")

        steps = 400
        solver.step(steps)

        d_eff = params.diffusivities[1]  # liquid
        lam = -d_eff * (2 - 2 * np.cos(k)) / params.dx**2
        growth = (1 + lam * params.dt) ** steps  # discrete Euler decay
        expected = mu0 * growth
        measured = solver.mu[..., 0].mean(axis=1)
        np.testing.assert_allclose(measured, expected, atol=2e-7)
        # and the phase fields stayed exactly pure liquid
        np.testing.assert_allclose(solver.phi[..., 1], 1.0, atol=1e-12)


class TestInterfaceFixedPoint:
    def test_relaxed_planar_interface_is_stationary(self, binary_kernels):
        """After relaxation, the planar profile must stop moving entirely
        when there is no bulk driving force (µ at two-phase equilibrium)."""
        model = binary_kernels.model
        params = model.params
        shape = (32, 4)
        solver = SingleBlockSolver(binary_kernels, shape, boundary=("neumann", "periodic"))
        phi0 = planar_front(shape, 2, 0, 1, position=16.0, epsilon=params.epsilon)
        # equilibrium µ for the binary parabolic model: ψ_s(µ*) = ψ_l(µ*)
        # with A identical: 0.2µ + c1·T = 0 → µ* = −c1 T / 0.2
        T = float(params.temperature.expr)
        # solve ψ_s − ψ_l = 0.2µ − 0.5 + 0.5T = 0
        mu_eq = (0.5 - 0.5 * T) / 0.2
        solver.set_state(phi0, mu=mu_eq)
        solver.step(800)  # relax the profile shape
        relaxed = solver.phi.copy()
        front_before = relaxed[..., 0].sum()
        solver.step(200)
        front_after = solver.phi[..., 0].sum()
        # front motion per step must be vanishingly small at equilibrium
        drift = abs(front_after - front_before) / 200
        assert drift < 1e-4, f"interface drifts {drift} cells²/step at equilibrium"
        # the shape keeps relaxing on a slow diffusive tail; it must only be
        # close to converged, while the front position is already pinned
        np.testing.assert_allclose(solver.phi, relaxed, atol=1e-2)


class TestCurvatureDrivenShrinkage:
    def _neutral_params(self) -> ModelParameters:
        """Two phases with *identical* thermodynamics: no bulk driving."""
        same = _phase([0.5], [0.0], 0.0, 0.0)
        import numpy as np

        return ModelParameters(
            name="neutral",
            dim=2,
            phases=[same, _phase([0.5], [0.0], 0.0, 0.0)],
            gamma=np.array([[0.0, 1.0], [1.0, 0.0]]),
            tau=np.ones((2, 2)),
            diffusivities=np.array([0.5, 0.5]),
            temperature=constant_temperature(1.0),
            epsilon=4.0,
            dt=5e-3,
            anti_trapping=False,
        )

    def test_disk_shrinks_monotonically(self):
        model = GrandPotentialModel(self._neutral_params())
        kernels = model.create_kernels()
        n = 40
        solver = SingleBlockSolver(kernels, (n, n), boundary="periodic")
        phi0 = np.zeros((n, n, 2))
        phi0[..., 1] = 1.0
        phi0 = add_seed(phi0, (n / 2, n / 2), 12.0, 0, 1, 4.0)
        solver.set_state(phi0, mu=0.0)

        areas = [solver.phi[..., 0].sum()]
        for _ in range(6):
            solver.step(100)
            solver.check_invariants()
            areas.append(solver.phi[..., 0].sum())
        diffs = np.diff(areas)
        assert np.all(diffs < 0), f"disk must shrink: {areas}"
        # curvature flow: dA/dt roughly constant while R ≫ interface width
        rates = -diffs[:4]
        assert rates.max() / rates.min() < 1.6, f"dA/dt not ~constant: {rates}"
