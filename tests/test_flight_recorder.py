"""Flight recorder, crash post-mortems, RunDir bundles and the HTML report.

The forensics contract under test: an always-on bounded event ring whose
self-measured overhead is exported as a gauge, a post-mortem bundle that
survives the worker -> parent pickle hop when a process-backed rank dies
(naming the rank, the step and the last dispatched kernel), a per-run
artifact directory whose ``manifest.json`` tracks status and inventory,
and a report renderer that turns all of it into one self-contained HTML
file.
"""

import importlib.util
import json
import pickle
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.observability import (
    HealthMonitor,
    RunDir,
    capture_postmortem,
    field_stats,
    get_recorder,
    get_rundir,
    install_excepthook,
    load_manifest,
    rank_recorder,
    set_rundir,
    write_postmortem,
)
from repro.observability.metrics import (
    MetricsRegistry,
    find_sample,
    parse_prometheus,
)
from repro.observability.recorder import OVERHEAD_GAUGE, FlightRecorder
from repro.observability.rundir import MANIFEST_SCHEMA
from repro.observability.tracing import Tracer
from repro.parallel import launch_ranks
from repro.parallel.mpi_sim import RankError, run_ranks
from repro.parallel.proc_comm import process_backend_available, run_ranks_processes

needs_processes = pytest.mark.skipif(
    not process_backend_available(),
    reason="needs the fork start method and multiprocessing.shared_memory",
)


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        for i in range(100):
            rec.record("op", f"e{i}")
        assert len(rec) == 8
        # the ring keeps the NEWEST events — that is the whole point
        assert [e.name for e in rec.events] == [f"e{i}" for i in range(92, 100)]
        assert rec.events[-1].seq == 100  # seq keeps counting past evictions

    def test_step_spans_and_position(self):
        rec = FlightRecorder()
        rec.step_begin(7, rank=3)
        assert rec.position == {"time_step": 7, "rank": 3}
        assert rec.open_spans()[0]["kind"] == "step_begin"
        rec.record("kernel", "stencil", time_step=7)
        rec.step_end(7, seconds=0.25)
        assert rec.open_spans() == []
        end = rec.events[-1]
        assert end.kind == "step_end" and end.data["seconds"] == 0.25
        assert rec.last_of("kernel").name == "stencil"

    def test_disabled_recorder_records_nothing(self):
        rec = FlightRecorder(enabled=False)
        assert rec.record("op", "x") is None
        assert rec.step_begin(1) is None
        assert len(rec) == 0 and rec.overhead_seconds == 0.0

    def test_overhead_is_measured_and_published(self):
        rec = FlightRecorder()
        for i in range(50):
            rec.record("op", "x", i=i)
        assert rec.overhead_seconds > 0.0
        reg = MetricsRegistry()
        value = rec.publish_overhead(registry=reg)
        assert value == rec.overhead_seconds
        parsed = parse_prometheus(reg.to_prometheus())
        assert find_sample(parsed, OVERHEAD_GAUGE) == pytest.approx(value)

    def test_overhead_gauge_carries_rank_label(self):
        rec = FlightRecorder(rank=3)
        rec.record("op", "x")
        reg = MetricsRegistry()
        rec.publish_overhead(registry=reg)
        parsed = parse_prometheus(reg.to_prometheus())
        assert find_sample(parsed, OVERHEAD_GAUGE, rank=3) is not None

    def test_journal_is_valid_jsonl(self, tmp_path):
        rec = FlightRecorder()
        path = tmp_path / "journal.jsonl"
        rec.open_journal(path)
        rec.step_begin(1)
        rec.record("kernel", "phi_sweep", time_step=1, block=(0, 1))
        rec.step_end(1, seconds=0.5)
        rec.close_journal()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["step_begin", "kernel", "step_end"]
        assert lines[1]["data"]["block"] == [0, 1]
        assert lines[0]["seq"] == 1

    def test_journal_line_buffered_before_close(self, tmp_path):
        # a crashing process never calls close_journal; every already
        # recorded event must still be on disk
        rec = FlightRecorder()
        rec.open_journal(tmp_path / "j.jsonl")
        rec.record("op", "about_to_die")
        text = (tmp_path / "j.jsonl").read_text()
        assert "about_to_die" in text

    def test_pickle_roundtrip_drops_process_state(self, tmp_path):
        rec = FlightRecorder(capacity=16, rank=2)
        rec.open_journal(tmp_path / "j.jsonl")
        rec.set_state_provider(lambda: {})
        rec.step_begin(5)
        rec.record("kernel", "stencil")
        clone = pickle.loads(pickle.dumps(rec))
        assert clone.rank == 2 and clone.capacity == 16
        assert [e.name for e in clone.events] == [e.name for e in rec.events]
        assert clone.position == {"time_step": 5}
        assert clone.journal_path is None and clone.state_provider is None
        clone.record("op", "post-restore")  # lock/journal rebuilt: still usable

    def test_rank_recorder_is_thread_local(self):
        outer = get_recorder()
        seen = {}

        def worker(rank):
            with rank_recorder(rank) as rec:
                rec.record("op", f"rank{rank}")
                seen[rank] = get_recorder()

        threads = [threading.Thread(target=worker, args=(r,)) for r in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen[0] is not seen[1]
        assert seen[0].rank == 0 and seen[1].rank == 1
        assert [e.name for e in seen[1].events] == ["rank1"]
        assert get_recorder() is outer  # the installing threads are gone


class TestPostmortem:
    def test_field_stats_flags_nonfinite(self):
        phi = np.array([0.0, 0.5, np.nan, np.inf, 1.0])
        stats = field_stats({"phi": phi})["phi"]
        assert stats["nan_count"] == 1 and stats["inf_count"] == 1
        assert stats["finite_count"] == 3
        assert stats["min"] == 0.0 and stats["max"] == 1.0

    def test_field_stats_survives_broken_provider_entry(self):
        class Exploding:
            def __array__(self, *a, **k):
                raise RuntimeError("backend array is gone")

        stats = field_stats({"bad": Exploding(), "ok": np.ones(2)})
        assert "error" in stats["bad"]
        # one broken entry must not take down the stats of the others
        assert stats["ok"]["finite_count"] == 2

    def test_capture_names_step_and_last_kernel(self):
        rec = FlightRecorder()
        rec.step_begin(42)
        rec.record("kernel", "mu_sweep", time_step=42)
        rec.set_state_provider(lambda: {"phi": np.array([1.0, np.nan])})
        try:
            raise RuntimeError("synthetic fault")
        except RuntimeError as exc:
            bundle = capture_postmortem(exc, recorder=rec, rank=3)
        assert bundle["schema"].startswith("repro-postmortem/")
        assert bundle["rank"] == 3
        assert bundle["position"]["time_step"] == 42
        assert bundle["last_kernel"]["name"] == "mu_sweep"
        assert bundle["exception"]["type"] == "RuntimeError"
        assert "synthetic fault" in bundle["exception"]["message"]
        assert "RuntimeError" in bundle["exception"]["traceback"]
        assert bundle["fields"]["phi"]["nan_count"] == 1
        assert bundle["open_spans"][0]["data"]["time_step"] == 42
        # the whole bundle must survive both serialization paths
        json.dumps(bundle)
        pickle.dumps(bundle)

    def test_write_postmortem(self, tmp_path):
        bundle = capture_postmortem(recorder=FlightRecorder())
        path = write_postmortem(bundle, tmp_path / "postmortem.json")
        assert json.loads(Path(path).read_text())["schema"] == bundle["schema"]

    def test_excepthook_writes_bundle_and_chains(self, tmp_path):
        rec = FlightRecorder()
        rec.step_begin(9)
        target = tmp_path / "postmortem.json"
        seen = []
        old = sys.excepthook
        sys.excepthook = lambda *a: seen.append(a)
        try:
            hook = install_excepthook(target, recorder=rec, rank=0)
            try:
                raise ValueError("boom")
            except ValueError:
                hook(*sys.exc_info())
        finally:
            sys.excepthook = old
        doc = json.loads(target.read_text())
        assert doc["position"]["time_step"] == 9
        assert doc["exception"]["type"] == "ValueError"
        assert len(seen) == 1  # the previous hook still ran


class TestRunDir:
    def test_manifest_and_inventory(self, tmp_path):
        rundir = RunDir(tmp_path / "run", config={"steps": 3})
        rundir.trace_path.write_text("{}")
        rundir.note(backend="numpy", ranks=4)
        manifest = rundir.write_manifest(status="ok")
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["config"] == {"steps": 3}
        assert manifest["backend"] == "numpy" and manifest["ranks"] == 4
        assert manifest["artifacts"] == {"trace": "trace.json"}
        assert manifest["host"]["hostname"]
        assert load_manifest(rundir.path)["status"] == "ok"

    def test_rank_journals_in_inventory(self, tmp_path):
        rundir = RunDir(tmp_path / "run")
        assert rundir.journal_path().name == "journal.jsonl"
        assert rundir.journal_path(3).name == "journal.rank3.jsonl"
        rundir.journal_path(0).write_text("")
        rundir.journal_path(1).write_text("")
        inv = rundir.artifacts()
        assert inv["rank_journals"] == ["journal.rank0.jsonl", "journal.rank1.jsonl"]

    def test_load_manifest_rejects_wrong_schema(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="schema"):
            load_manifest(tmp_path)

    def test_context_manager_ok_path(self, tmp_path):
        with RunDir(tmp_path / "run") as rundir:
            assert get_rundir() is rundir
            assert load_manifest(rundir.path)["status"] == "running"
        assert get_rundir() is None
        assert load_manifest(tmp_path / "run")["status"] == "ok"

    def test_context_manager_crash_writes_postmortem(self, tmp_path):
        rec = get_recorder()
        with pytest.raises(RuntimeError):
            with RunDir(tmp_path / "run") as rundir:
                rec.step_begin(13)
                raise RuntimeError("mid-run fault")
        manifest = load_manifest(tmp_path / "run")
        assert manifest["status"] == "crashed"
        assert "mid-run fault" in manifest["error"]
        doc = json.loads(rundir.postmortem_path.read_text())
        assert doc["position"]["time_step"] == 13
        assert doc["exception"]["type"] == "RuntimeError"
        rec.step_end(13)

    def test_attach_health_mirrors_events(self, tmp_path):
        rundir = RunDir(tmp_path / "run")
        monitor = HealthMonitor(policy="warn", interval=1)
        rundir.attach_health(monitor)
        monitor.check({"phi": np.array([0.5, np.nan])}, time_step=4)
        events = [json.loads(line) for line in
                  rundir.health_path.read_text().splitlines()]
        assert events and events[0]["time_step"] == 4
        assert events[0]["field"] == "phi"


class TestSolverRunDirIntegration:
    @pytest.fixture(scope="class")
    def kernel_set(self):
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        return GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()

    def test_solver_journals_steps_and_checkpoints(self, kernel_set, tmp_path):
        from repro.pfm import SingleBlockSolver, planar_front

        with RunDir(tmp_path / "run") as rundir:
            solver = SingleBlockSolver(kernel_set, (8, 8), rundir=rundir)
            phi = planar_front(
                (8, 8), solver.params.n_phases, 0, 1, position=4.0,
                epsilon=solver.params.epsilon,
            )
            solver.set_state(phi, mu=0.0)
            solver.step(3)
            ckpt = solver.save_checkpoint()
            assert Path(ckpt).parent == rundir.checkpoint_dir
        get_recorder().close_journal()
        manifest = load_manifest(tmp_path / "run")
        assert manifest["solver"] == "single"
        assert manifest["status"] == "ok"
        assert "checkpoints" in manifest["artifacts"]
        events = [json.loads(line) for line in
                  rundir.journal_path().read_text().splitlines()]
        kinds = [e["kind"] for e in events]
        assert kinds.count("step_begin") == 3 and kinds.count("step_end") == 3
        assert any(e["kind"] == "kernel" for e in events)
        assert any(e["kind"] == "checkpoint" for e in events)
        ends = [e for e in events if e["kind"] == "step_end"]
        assert all(e["data"]["seconds"] >= 0 for e in ends)


def _crashing_prog(comm):
    """SPMD program where rank 2 dies mid-step 4; the rest return clean."""
    rec = get_recorder()
    for ts in (1, 2, 3):
        rec.step_begin(ts)
        rec.record("kernel", "stencil", time_step=ts)
        rec.step_end(ts)
    if comm.rank == 2:
        rec.step_begin(4)
        rec.record("kernel", "stencil", time_step=4)
        raise RuntimeError("injected fault on rank 2")
    return comm.rank


class TestCrashForensics:
    @needs_processes
    def test_process_crash_produces_postmortem(self, tmp_path):
        rundir = RunDir(tmp_path / "run")
        with pytest.raises(RankError, match="rank 2") as excinfo:
            run_ranks_processes(4, _crashing_prog, rundir=rundir)
        postmortems = excinfo.value.postmortems
        assert set(postmortems) == {2}
        bundle = postmortems[2]
        assert bundle["rank"] == 2
        assert bundle["position"]["time_step"] == 4
        assert bundle["last_kernel"]["name"] == "stencil"
        assert "injected fault" in bundle["exception"]["message"]
        doc = json.loads(rundir.postmortem_path.read_text())
        assert doc["schema"].startswith("repro-postmortem/")
        assert doc["ranks"]["2"]["position"]["time_step"] == 4

    @needs_processes
    def test_process_crash_uses_ambient_rundir(self, tmp_path):
        # launch_ranks without an explicit rundir falls back to get_rundir()
        with pytest.raises(RankError):
            with RunDir(tmp_path / "run") as rundir:
                launch_ranks(4, _crashing_prog, backend="process")
        assert load_manifest(rundir.path)["status"] == "crashed"
        # the context manager must NOT clobber the per-rank document the
        # rank runtime already wrote with a parent-side single bundle
        doc = json.loads(rundir.postmortem_path.read_text())
        assert doc["ranks"]["2"]["last_kernel"]["name"] == "stencil"

    @needs_processes
    def test_rank_error_keeps_channel_diagnostics(self, tmp_path):
        # the deadlock-forensics message (source, dest, tag) must survive
        # the addition of the post-mortem machinery
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=7)  # rank 1 never sends
            return None

        rundir = RunDir(tmp_path / "run")
        with pytest.raises(RankError) as excinfo:
            run_ranks_processes(2, prog, recv_timeout=0.5, rundir=rundir)
        message = str(excinfo.value)
        assert "source=1" in message and "tag=7" in message
        bundle = excinfo.value.postmortems[0]
        assert "tag=7" in bundle["exception"]["message"]

    def test_sim_backend_crash_produces_postmortem(self, tmp_path):
        rundir = RunDir(tmp_path / "run")

        def prog(comm):
            with rank_recorder(comm.rank):
                return _crashing_prog(comm)

        with pytest.raises(RankError) as excinfo:
            run_ranks(4, prog, rundir=rundir)
        bundle = excinfo.value.postmortems[2]
        assert bundle["rank"] == 2 and bundle["position"]["time_step"] == 4
        assert json.loads(rundir.postmortem_path.read_text())["ranks"]["2"]


def _load_run_report():
    path = Path(__file__).resolve().parents[1] / "tools" / "run_report.py"
    spec = importlib.util.spec_from_file_location("run_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunReport:
    def _make_rundir(self, tmp_path):
        rundir = RunDir(tmp_path / "run", config={"steps": 2})
        rec = FlightRecorder()
        rec.open_journal(rundir.journal_path())
        for ts in (1, 2):
            rec.step_begin(ts)
            rec.record("kernel", "stencil", time_step=ts)
            rec.step_end(ts, seconds=0.01 * ts)
        rec.close_journal()
        rundir.diagnostics_path.write_text(
            "time_step,time,free_energy,phase_fraction\n"
            "0,0.0,10.0,0.5\n1,0.05,9.5,0.49\n2,0.10,9.1,0.48\n"
        )
        reg = MetricsRegistry()
        reg.gauge("repro_kernel_predicted_mlups", "p", kernel="stencil").set(100.0)
        reg.gauge("repro_kernel_measured_mlups", "m", kernel="stencil").set(80.0)
        reg.gauge("repro_model_accuracy_ratio", "r", kernel="stencil").set(0.8)
        reg.gauge(OVERHEAD_GAUGE, "overhead").set(0.001)
        rundir.metrics_path.write_text(reg.to_prometheus())
        return rundir

    def test_report_renders_all_sections(self, tmp_path):
        rundir = self._make_rundir(tmp_path)
        rundir.write_manifest(status="ok")
        run_report = _load_run_report()
        assert run_report.main([str(rundir.path)]) == 0
        html = rundir.report_path.read_text()
        assert "Run summary" in html and ">ok<" in html
        assert "step wall time" in html and "<svg" in html
        assert "free_energy" in html
        assert "stencil" in html and "predicted MLUP/s" in html
        assert "flight-recorder overhead" in html
        assert "no post-mortems" in html
        assert "journal.jsonl" in html  # artifact inventory

    def test_report_renders_crash_section(self, tmp_path):
        rundir = self._make_rundir(tmp_path)
        try:
            raise RuntimeError("kaboom at step 2")
        except RuntimeError as exc:
            rec = FlightRecorder()
            rec.step_begin(2)
            rec.record("kernel", "stencil", time_step=2)
            bundle = capture_postmortem(exc, recorder=rec, rank=1)
        write_postmortem(
            {"schema": bundle["schema"], "ranks": {"1": bundle}},
            rundir.postmortem_path,
        )
        rundir.write_manifest(status="crashed", error="RuntimeError: kaboom")
        run_report = _load_run_report()
        out = tmp_path / "crash_report.html"
        assert run_report.main([str(rundir.path), "--out", str(out)]) == 0
        html = out.read_text()
        assert "Crash post-mortem" in html and "Rank 1" in html
        assert "kaboom" in html and "stencil" in html
        assert ">crashed<" in html

    def test_report_survives_missing_artifacts(self, tmp_path):
        rundir = RunDir(tmp_path / "bare")
        rundir.write_manifest(status="ok")
        run_report = _load_run_report()
        assert run_report.main([str(rundir.path)]) == 0
        html = rundir.report_path.read_text()
        assert "no step timings recorded" in html
        assert "no diagnostics.csv" in html


class TestSatelliteFixes:
    def test_accuracy_export_skips_nonfinite(self):
        from repro.observability import export_accuracy_metrics

        reg = MetricsRegistry()
        rows = [
            {"kernel": "good", "predicted_mlups": 100.0,
             "measured_mlups": 80.0, "ratio": 0.8},
            {"kernel": "bad", "predicted_mlups": 0.0,
             "measured_mlups": 80.0, "ratio": float("nan")},
        ]
        export_accuracy_metrics(rows, registry=reg)
        parsed = parse_prometheus(reg.to_prometheus())
        assert find_sample(parsed, "repro_model_accuracy_ratio", kernel="good") == 0.8
        # the NaN ratio is dropped; the finite gauges of the same row stay
        assert find_sample(parsed, "repro_model_accuracy_ratio", kernel="bad") is None
        assert find_sample(parsed, "repro_kernel_measured_mlups", kernel="bad") == 80.0
        text = reg.to_prometheus()
        assert "nan" not in text.lower()

    def test_histogram_json_reports_mean_with_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_step_seconds", "step wall", solver="t")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        sample = reg.to_json()["repro_step_seconds"]["samples"][0]
        assert sample["count"] == 3
        assert sample["mean"] == pytest.approx(0.2)
        empty = reg.histogram("repro_step_seconds", "step wall", solver="empty")
        assert empty is not hist
        sample_empty = [
            s for s in reg.to_json()["repro_step_seconds"]["samples"]
            if s["labels"].get("solver") == "empty"
        ][0]
        # a zero mean from zero observations is distinguishable from a
        # true zero mean exactly because count rides along
        assert sample_empty["count"] == 0 and sample_empty["mean"] == 0.0

    def test_tracer_pickle_preserves_counters_and_tids(self):
        tracer = Tracer(rank=1)
        with tracer.span("step", category="runtime"):
            tracer.add_counter("energy", {"free_energy": 12.5}, category="runtime")
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.counters == tracer.counters
        assert [s.name for s in clone.spans] == ["step"]
        # thread-name metadata survives: the chrome export of the clone
        # carries the same thread_name/tid assignments as the original
        def tid_meta(t):
            return sorted(
                (e["tid"], e["args"]["name"])
                for e in t.to_chrome()["traceEvents"]
                if e.get("ph") == "M" and e["name"] == "thread_name"
            )

        assert tid_meta(clone) == tid_meta(tracer)
        counter_events = [
            e for e in clone.to_chrome()["traceEvents"] if e.get("ph") == "C"
        ]
        assert counter_events and counter_events[0]["args"] == {"free_energy": 12.5}

    @needs_processes
    def test_tracer_counters_cross_process_boundary(self):
        def prog(comm):
            tracer = Tracer(rank=comm.rank)
            with tracer.span("step", category="runtime"):
                tracer.add_counter(
                    "diag", {"value": float(comm.rank)}, category="runtime"
                )
            return tracer

        tracers = run_ranks_processes(2, prog)
        for rank, tracer in enumerate(tracers):
            (name, category, ts, values) = tracer.counters[0]
            assert name == "diag" and values == {"value": float(rank)}
            assert tracer.rank == rank


@pytest.fixture(autouse=True)
def _isolate_ambient_state():
    """No test leaks a rundir or journal into the shared global recorder."""
    previous = get_rundir()
    yield
    set_rundir(previous)
    get_recorder().close_journal()
    get_recorder().set_state_provider(None)
