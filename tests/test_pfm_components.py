"""Unit tests for the phase-field model building blocks."""

import numpy as np
import pytest
import sympy as sp

from repro.pfm import (
    CubicAnisotropy,
    GrandPotentialDrivingForce,
    ParabolicPhaseData,
    anisotropic_gradient_energy,
    anti_trapping_current,
    constant_temperature,
    generalized_gradient,
    gradient_temperature,
    g_interp,
    h_interp,
    h_interp_prime,
    h_quintic,
    isotropic_gradient_energy,
    multi_obstacle_potential,
    multi_well_potential,
    rotation_matrix,
)
from repro.symbolic import Diff, Field, Transient
from repro.symbolic.coordinates import t as t_symbol, x_


class TestInterpolation:
    @pytest.mark.parametrize("h", [h_interp, h_quintic])
    def test_endpoint_values(self, h):
        x = sp.Symbol("x")
        assert h(x).subs(x, 0) == 0
        assert h(x).subs(x, 1) == 1

    @pytest.mark.parametrize("h", [h_interp, h_quintic])
    def test_zero_gradient_at_endpoints(self, h):
        x = sp.Symbol("x")
        dh = sp.diff(h(x), x)
        assert dh.subs(x, 0) == 0
        assert dh.subs(x, 1) == 0

    def test_prime_consistent(self):
        x = sp.Symbol("x")
        assert sp.expand(sp.diff(h_interp(x), x) - h_interp_prime(x)) == 0

    def test_two_phase_partition_of_unity(self):
        x = sp.Symbol("x")
        assert sp.expand(h_interp(x) + h_interp(1 - x) - 1) == 0

    def test_g_is_linear(self):
        x = sp.Symbol("x")
        assert g_interp(x) == x


class TestPotentials:
    def setup_method(self):
        self.phi = Field("phi", 3, (3,))

    def test_obstacle_pairwise_structure(self):
        gamma = [[0, 1, 2], [1, 0, 3], [2, 3, 0]]
        w = multi_obstacle_potential(self.phi, gamma)
        p0, p1, p2 = (self.phi.center(i) for i in range(3))
        expected = sp.Rational(16) / sp.pi**2 * (
            1 * p0 * p1 + 2 * p0 * p2 + 3 * p1 * p2
        )
        assert sp.expand(w - expected) == 0

    def test_obstacle_triple_term(self):
        w = multi_obstacle_potential(self.phi, 1.0, gamma_triple=5.0)
        p0, p1, p2 = (self.phi.center(i) for i in range(3))
        triple = w.coeff(p0 * p1 * p2)
        assert triple == 5.0

    def test_obstacle_zero_in_bulk(self):
        w = multi_obstacle_potential(self.phi, 1.0, gamma_triple=2.0)
        bulk = {self.phi.center(0): 1, self.phi.center(1): 0, self.phi.center(2): 0}
        assert w.subs(bulk) == 0

    def test_obstacle_positive_in_interface(self):
        w = multi_obstacle_potential(self.phi, 1.0)
        iface = {
            self.phi.center(0): sp.Rational(1, 2),
            self.phi.center(1): sp.Rational(1, 2),
            self.phi.center(2): 0,
        }
        assert float(w.subs(iface)) > 0

    def test_multi_well_zero_in_bulk(self):
        w = multi_well_potential(self.phi, 1.0)
        bulk = {self.phi.center(0): 1, self.phi.center(1): 0, self.phi.center(2): 0}
        assert w.subs(bulk) == 0

    def test_scalar_gamma_broadcast(self):
        w1 = multi_obstacle_potential(self.phi, 2.0)
        w2 = multi_obstacle_potential(self.phi, [[0, 2, 2], [2, 0, 2], [2, 2, 0]])
        assert sp.expand(w1 - w2) == 0


class TestGradientEnergy:
    def setup_method(self):
        self.phi = Field("phi", 3, (2,))

    def test_generalized_gradient_antisymmetric(self):
        q01 = generalized_gradient(self.phi, 0, 1)
        q10 = generalized_gradient(self.phi, 1, 0)
        for a, b in zip(q01, q10):
            assert sp.expand(a + b) == 0

    def test_isotropic_contains_all_gradients(self):
        a = isotropic_gradient_energy(self.phi, 1.0)
        diffs = a.atoms(Diff)
        axes = {d.axis for d in diffs}
        assert axes == {0, 1, 2}

    def test_anisotropy_unity_at_zero_delta(self):
        aniso = CubicAnisotropy(delta=0.0)
        q = [sp.Symbol("qx"), sp.Symbol("qy"), sp.Symbol("qz")]
        assert sp.simplify(aniso.value(q, 0, 1) - 1) == 0

    def test_cubic_anisotropy_fourfold_symmetry(self):
        """A(q) must be invariant under 90° rotations about the axes."""
        aniso = CubicAnisotropy(delta=0.3)
        qx, qy, qz = sp.symbols("qx qy qz")
        val = aniso.value([qx, qy, qz], 0, 1)
        rotated = val.subs({qx: qy, qy: -qx}, simultaneous=True)
        assert sp.simplify(val - rotated) == 0

    def test_anisotropy_extremes(self):
        """A is maximal along <100> and minimal along <111> for δ>0."""
        aniso = CubicAnisotropy(delta=0.3)
        along_axis = float(aniso.value([sp.Float(1), sp.Float(0), sp.Float(0)], 0, 1))
        along_diag = float(
            aniso.value([sp.Float(1), sp.Float(1), sp.Float(1)], 0, 1)
        )
        assert along_axis == pytest.approx(1 + 0.3, rel=1e-6)
        assert along_diag == pytest.approx(1 + 0.3 * (4 / 3 - 3), rel=1e-6)
        assert along_axis > along_diag

    def test_rotation_matrix_orthogonal(self):
        R = rotation_matrix(0.3, 0.2, 0.1)
        eye = R * R.T
        assert sp.simplify(eye - sp.eye(3)).norm() < 1e-12

    def test_rotated_anisotropy_differs(self):
        plain = CubicAnisotropy(delta=0.3)
        rot = CubicAnisotropy(delta=0.3, rotations={0: rotation_matrix(np.pi / 6)})
        q = [sp.Float(1), sp.Float(0), sp.Float(0)]
        assert float(plain.value(q, 0, 1)) != pytest.approx(float(rot.value(q, 0, 1)))

    def test_anisotropic_energy_reduces_to_isotropic(self):
        a_iso = isotropic_gradient_energy(self.phi, 1.0)
        a_ani = anisotropic_gradient_energy(self.phi, 1.0, CubicAnisotropy(delta=0.0))
        diff = sp.simplify(a_ani - a_iso)
        assert diff == 0


class TestDrivingForce:
    def _phase(self, sign=1.0):
        return ParabolicPhaseData(
            a0=[[-0.5, 0.0], [0.0, -0.5]],
            a1=[[0.0, 0.0], [0.0, 0.0]],
            b0=[0.1 * sign, -0.2 * sign],
            b1=[0.0, 0.0],
            c0=0.0,
            c1=-0.3 * sign,
        )

    def test_symmetry_enforced(self):
        with pytest.raises(ValueError, match="symmetric"):
            ParabolicPhaseData(
                a0=[[1.0, 0.5], [0.0, 1.0]],
                a1=np.zeros((2, 2)),
                b0=[0, 0],
                b1=[0, 0],
                c0=0,
                c1=0,
            )

    def test_concentration_is_negative_mu_gradient(self):
        p = self._phase()
        mu = sp.Matrix(sp.symbols("m0 m1"))
        T = sp.Symbol("T")
        psi = p.psi(mu, T)
        c = p.concentration(mu, T)
        for m in range(2):
            assert sp.expand(c[m] + sp.diff(psi, mu[m])) == 0

    def test_susceptibility_positive_definite(self):
        p = self._phase()
        chi = p.susceptibility(sp.Float(1.0))
        evs = [float(v) for v in chi.eigenvals()]
        assert all(v > 0 for v in evs)

    def test_parameter_count_formula(self):
        p = self._phase()
        # K-1=2: sym A has 3, B has 2, C has 1 -> 6, x2 for affine T
        assert p.parameter_count() == 12

    def test_total_quantities_interpolate(self):
        phases = [self._phase(1.0), self._phase(-1.0)]
        df = GrandPotentialDrivingForce(phases)
        phi = Field("phi", 3, (2,))
        mu = Field("mu", 3, (2,))
        T = sp.Float(1.0)
        psi = df.psi_total(phi, mu, T)
        bulk0 = {phi.center(0): 1, phi.center(1): 0}
        mv = df.mu_vector(mu)
        expected = phases[0].psi(mv, T)
        assert sp.expand(psi.subs(bulk0) - expected) == 0

    def test_mu_field_shape_checked(self):
        df = GrandPotentialDrivingForce([self._phase()])
        bad_mu = Field("mu", 3, (1,))
        with pytest.raises(ValueError, match="index shape"):
            df.mu_vector(bad_mu)


class TestTemperature:
    def test_constant(self):
        T = constant_temperature(1.5)
        assert T.is_constant
        assert T.time_derivative == 0
        assert float(T.expr) == 1.5

    def test_gradient_field(self):
        T = gradient_temperature(T0=1.0, G=0.01, v=0.5, axis=2)
        assert not T.is_constant
        assert T.axes == {2}
        assert float(T.time_derivative) == pytest.approx(-0.005)
        val = T.expr.subs({x_[2]: 10.0, t_symbol: 0.0})
        assert float(val) == pytest.approx(1.1)


class TestAntiTrapping:
    def test_structure(self):
        phi = Field("phi", 3, (3,))
        mu = Field("mu", 3, (1,))
        phases = [
            ParabolicPhaseData([[-0.5]], [[0.0]], [0.3], [0.0], 0.0, -0.2),
            ParabolicPhaseData([[-0.5]], [[0.0]], [-0.3], [0.0], 0.0, -0.2),
            ParabolicPhaseData([[-0.5]], [[0.0]], [0.0], [0.0], 0.0, 0.0),
        ]
        df = GrandPotentialDrivingForce(phases)
        jat = anti_trapping_current(
            phi, mu, df, sp.Float(1.0), sp.Float(4.0), liquid_phase=2
        )
        assert len(jat) == 1 and len(jat[0]) == 3
        transients = set()
        for comp in jat[0]:
            transients |= comp.atoms(Transient)
        # one transient per solid phase
        assert {tr.arg.index[0] for tr in transients} == {0, 1}

    def test_liquid_index_validated(self):
        phi = Field("phi", 3, (2,))
        mu = Field("mu", 3, (1,))
        phases = [
            ParabolicPhaseData([[-0.5]], [[0.0]], [0.3], [0.0], 0.0, -0.2),
            ParabolicPhaseData([[-0.5]], [[0.0]], [0.0], [0.0], 0.0, 0.0),
        ]
        df = GrandPotentialDrivingForce(phases)
        with pytest.raises(ValueError, match="liquid"):
            anti_trapping_current(phi, mu, df, sp.Float(1.0), sp.Float(4.0), liquid_phase=5)
