"""CUDA source generation (structural) and in-situ analysis tests."""

import numpy as np
import pytest
import sympy as sp

from repro.analysis import (
    TimeSeriesWriter,
    extract_interface_cells,
    front_position,
    front_velocity,
    interface_fraction,
    interfacial_area,
    lamellar_spacing,
    load_snapshot,
    overgrown,
    phase_fractions,
    save_snapshot,
    solid_fraction_profile,
    tip_position,
    tip_radius,
    track_tips,
)
from repro.backends.cuda_backend import generate_cuda_source
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.ir import KernelConfig, create_kernel
from repro.pfm import lamellar_front, planar_front
from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad, random_uniform


def _kernel(dim=3, rng=False, approx=False):
    f = Field("f", dim)
    f_dst = Field("f_dst", dim)
    rhs = div(grad(f.center()))
    if rng:
        rhs += random_uniform(-1, 1, stream=0)
    eq = EvolutionEquation(f.center(), rhs)
    ac = discretize_system(
        PDESystem([eq], name="cuda_t"), f_dst, FiniteDifferenceDiscretization(dim=dim)
    )
    cfg = KernelConfig(
        target="gpu", approximations=("division", "rsqrt") if approx else ()
    )
    return create_kernel(ac, cfg)


class TestCudaBackend:
    def test_global_kernel_signature(self):
        src = generate_cuda_source(_kernel()).source
        assert 'extern "C" __global__ void kernel_cuda_t(' in src
        assert "double * __restrict__ f_f" in src

    def test_linear3d_mapping_uses_thread_indices(self):
        src = generate_cuda_source(_kernel(), mapping="linear3d").source
        assert "blockIdx.x * blockDim.x + threadIdx.x" in src
        assert "if (i0 >= n0 || i1 >= n1 || i2 >= n2) return;" in src

    def test_z_loop_mapping_has_serial_loop(self):
        src = generate_cuda_source(_kernel(), mapping="z_loop").source
        assert "for (int64_t i0 = 0;" in src

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            generate_cuda_source(_kernel(), mapping="warp9")

    def test_philox_device_function(self):
        src = generate_cuda_source(_kernel(rng=True)).source
        assert "__device__ __forceinline__ double _philox_uniform" in src
        assert "_philox_uniform(" in src.split("__global__")[1]

    def test_fast_intrinsics(self):
        src = generate_cuda_source(_kernel(approx=True)).source
        assert "__fdividef" in src

    def test_fence_insertion(self):
        k = _kernel()
        src = generate_cuda_source(k, fence_positions=(1,)).source
        assert "__threadfence_block();" in src

    def test_launch_bounds(self):
        cs = generate_cuda_source(_kernel(), block_dim=(64, 4, 1))
        grid, block = cs.launch_bounds((128, 64, 100))
        assert block == (64, 4, 1)
        assert grid[0] == -(-100 // 64)

    def test_source_deterministic(self):
        a = generate_cuda_source(_kernel()).source
        b = generate_cuda_source(_kernel()).source
        assert a == b


class TestMetrics:
    def test_phase_fractions(self):
        phi = planar_front((16, 8), 2, 0, 1, position=8.0, epsilon=2.0)
        fr = phase_fractions(phi)
        assert fr.sum() == pytest.approx(1.0)
        assert fr[0] == pytest.approx(0.5, abs=0.05)

    def test_interface_fraction(self):
        phi = planar_front((32, 8), 2, 0, 1, position=16.0, epsilon=2.0)
        assert 0.05 < interface_fraction(phi) < 0.5

    def test_interfacial_area_flat_front(self):
        """A flat front in a W×L box has area ≈ L (one interface)."""
        phi = planar_front((64, 10), 2, 0, 1, position=32.0, epsilon=3.0)
        area = interfacial_area(phi, 0)
        assert area == pytest.approx(10.0, rel=0.15)

    def test_front_position_matches_construction(self):
        phi = planar_front((40, 8), 2, 0, 1, position=13.0, epsilon=2.0)
        assert front_position(phi, [0]) == pytest.approx(13.0, abs=0.5)

    def test_front_velocity(self):
        v = front_velocity([1.0, 2.0, 4.0], dt_between_samples=0.5)
        np.testing.assert_allclose(v, [2.0, 4.0])

    def test_solid_profile_monotone(self):
        phi = planar_front((40, 8), 2, 0, 1, position=20.0, epsilon=3.0)
        prof = solid_fraction_profile(phi, [0])
        assert prof[0] == pytest.approx(1.0, abs=1e-6)
        assert prof[-1] == pytest.approx(0.0, abs=1e-6)
        assert np.all(np.diff(prof) <= 1e-12)


class TestLamellar:
    def test_spacing_recovered(self):
        """A constructed lamellar pattern must yield its stripe period."""
        phi = lamellar_front(
            (20, 64), 3, solid_phases=[0, 1], liquid_phase=2,
            position=15.0, lamella_width=8.0, epsilon=1.5, lamella_axis=1,
        )
        lam = lamellar_spacing(phi, phase=0, growth_axis=0, lamella_axis=0, position=4)
        assert lam == pytest.approx(16.0, rel=0.1)  # period = 2 x stripe width


class TestDendrite:
    def _dendrite_phi(self):
        shape = (40, 21)
        phi = np.zeros(shape + (2,))
        phi[..., 1] = 1.0
        x, y = np.indices(shape)
        # parabola z = 25 - y'^2 / (2*4): tip radius 4 at (25, 10)
        inside = x <= 25 - (y - 10.0) ** 2 / 8.0
        phi[inside, 0] = 1.0
        phi[inside, 1] = 0.0
        return phi

    def test_tip_position(self):
        phi = self._dendrite_phi()
        pos = tip_position(phi, 0, growth_axis=0)
        assert pos == pytest.approx(25.5, abs=1.0)

    def test_tip_radius(self):
        phi = self._dendrite_phi()
        r = tip_radius(phi, 0, growth_axis=0, fit_cells=5)
        assert r == pytest.approx(4.0, rel=0.4)

    def test_track_and_overgrowth(self):
        phi = self._dendrite_phi()
        states = track_tips(phi, [0, 1], growth_axis=0)
        assert states[0].position > 0
        hist = [states, states]
        # phase 1 is the liquid occupying everything -> not behind; use margin
        assert isinstance(overgrown(hist), set)

    def test_missing_phase_nan(self):
        phi = np.zeros((10, 10, 2))
        phi[..., 1] = 1.0
        assert np.isnan(tip_position(phi, 0))


class TestIO:
    def test_snapshot_roundtrip(self, tmp_path):
        phi = np.random.default_rng(0).random((6, 6, 2))
        mu = np.zeros((6, 6, 1))
        save_snapshot(tmp_path / "state.npz", phi, mu, time=1.5, time_step=300)
        data = load_snapshot(tmp_path / "state.npz")
        np.testing.assert_array_equal(data["phi"], phi)
        assert data["time"] == 1.5 and data["time_step"] == 300

    def test_timeseries(self, tmp_path):
        w = TimeSeriesWriter(tmp_path / "ts.csv", ["step", "front"])
        w.append(step=0, front=1.0)
        w.append(step=1, front=2.5)
        data = w.read()
        np.testing.assert_allclose(data["front"], [1.0, 2.5])

    def test_timeseries_missing_column(self, tmp_path):
        w = TimeSeriesWriter(tmp_path / "ts2.csv", ["a", "b"])
        with pytest.raises(KeyError):
            w.append(a=1)

    def test_interface_extraction_reduces_data(self):
        phi = planar_front((64, 64), 2, 0, 1, position=32.0, epsilon=2.0)
        cells = extract_interface_cells(phi, 0, 1)
        assert 0 < len(cells) < 64 * 64 // 4
        assert cells.shape[1] == 2
