"""Process-backed communicator: real ranks, shared-memory ghosts, bit-identity.

The headline guarantee under test: a :class:`DistributedSolver` run on the
process backend — real OS processes, shared-memory slabs, pickle pipes — is
*bitwise identical* to the thread-backed simulator, for sync and overlapped
schedules, ghost widths 1 and 2, with fluctuations and the distributed
diagnostics reduction enabled.  Everything here uses the numpy backend: the
rank programs must be safe to fork from a pytest process (no OpenMP pool in
the parent).
"""

import os
import time

import numpy as np
import pytest

from repro.parallel import BlockForest, DistributedSolver
from repro.parallel.mpi_sim import RankError, run_ranks
from repro.parallel.proc_comm import (
    launch_ranks,
    process_backend_available,
    run_ranks_processes,
)

pytestmark = pytest.mark.skipif(
    not process_backend_available(),
    reason="needs the fork start method and multiprocessing.shared_memory",
)


class TestProcessRuntime:
    def test_ranks_are_real_processes(self):
        def prog(comm):
            return os.getpid()

        pids = run_ranks_processes(3, prog)
        assert len(set(pids)) == 3
        assert os.getpid() not in pids

    def test_large_array_roundtrip_through_slab(self):
        def prog(comm):
            other = 1 - comm.rank
            data = np.random.default_rng(comm.rank).random((512, 512))
            comm.send(data, other, tag=0)
            got = comm.recv(other, tag=0)
            expect = np.random.default_rng(other).random((512, 512))
            return np.array_equal(got, expect)

        assert run_ranks_processes(2, prog) == [True, True]

    def test_pipe_fallback_when_slab_too_small(self):
        # a 512 KiB payload cannot fit a 4 KiB slab: it must fall back to
        # the pickle pipe and still arrive intact (and not deadlock on the
        # kernel pipe buffer when both ranks send before either receives)
        def prog(comm):
            other = 1 - comm.rank
            data = np.random.default_rng(comm.rank).random((256, 256))
            comm.send(data, other, tag=0)
            got = comm.recv(other, tag=0)
            expect = np.random.default_rng(other).random((256, 256))
            return np.array_equal(got, expect)

        assert run_ranks_processes(2, prog, slab_bytes=4096) == [True, True]

    def test_send_has_value_semantics(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.ones(2048)
                comm.send(data, 1, tag=0)
                data[:] = -1.0  # mutation after send must not reach rank 1
                comm.barrier()
                return None
            comm.barrier()
            return float(comm.recv(0, tag=0)[0])

        assert run_ranks_processes(2, prog)[1] == 1.0

    def test_nested_payload_with_arrays(self):
        # the exchange protocol ships bundles: lists of (coords, offset,
        # strip) tuples — arrays nested inside containers must park in the
        # slab and rematerialize in place
        def prog(comm):
            if comm.rank == 0:
                bundle = [
                    ((0, 1), (-1, 0), np.arange(20000, dtype=np.float64)),
                    ((1, 1), (0, +1), np.full((64, 64), 7.0)),
                ]
                comm.send({"bundle": bundle, "step": 3}, 1, tag=("phi", "ghosts"))
                return None
            msg = comm.recv(0, tag=("phi", "ghosts"))
            (c0, o0, a0), (c1, o1, a1) = msg["bundle"]
            return (
                msg["step"] == 3
                and c0 == (0, 1)
                and o1 == (0, +1)
                and float(a0[19999]) == 19999.0
                and np.all(a1 == 7.0)
            )

        assert bool(run_ranks_processes(2, prog)[1])

    def test_irecv_test_is_nonblocking(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=5)
                t0 = time.perf_counter()
                first, _ = req.test()  # nothing sent yet: must return now
                probe_s = time.perf_counter() - t0
                comm.send("go", 1, tag=6)
                value = req.wait()
                return first, probe_s, value
            comm.recv(0, tag=6)  # only send after rank 0 probed
            comm.send("payload", 0, tag=5)
            return None

        first, probe_s, value = run_ranks_processes(2, prog, recv_timeout=30)[0]
        assert first is False
        assert probe_s < 1.0
        assert value == "payload"

    def test_recv_timeout_names_channel(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=42)
            else:
                # keep rank 1 alive past rank 0's deadline so the timeout
                # path (not the peer-exited path) is the one that fires
                comm.recv(0, tag=99)
            return None

        with pytest.raises(RankError) as err:
            run_ranks_processes(2, prog, recv_timeout=1.0, join_timeout=30.0)
        assert "source=" in str(err.value)
        assert "tag=" in str(err.value)

    def test_exited_peer_fails_fast_with_channel(self):
        def prog(comm):
            if comm.rank == 0:
                comm.recv(1, tag=42)  # never sent; rank 1 exits immediately
            return None

        with pytest.raises(RankError) as err:
            run_ranks_processes(2, prog, recv_timeout=60.0, join_timeout=30.0)
        # diagnosed well before the 60 s receive deadline, naming the channel
        assert "source=1" in str(err.value)
        assert "tag=42" in str(err.value)

    def test_stuck_rank_terminated_and_named(self):
        def prog(comm):
            if comm.rank == 1:
                time.sleep(60)
            return comm.rank

        t0 = time.monotonic()
        with pytest.raises(RankError, match=r"rank\(s\) 1"):
            run_ranks_processes(2, prog, recv_timeout=5.0, join_timeout=1.5)
        assert time.monotonic() - t0 < 30.0

    def test_worker_exception_propagates_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom on rank 2")
            comm.barrier()
            return comm.rank

        with pytest.raises(RankError, match="rank 2"):
            run_ranks_processes(3, prog, recv_timeout=30.0)

    def test_collectives_match_simulator(self):
        def prog(comm):
            total = comm.allreduce(float(comm.rank + 1))
            ranks = comm.allgather(comm.rank)
            top = comm.bcast("root-data" if comm.rank == 0 else None)
            gathered = comm.gather(comm.rank * 10, root=1)
            return total, ranks, top, gathered

        for n in (2, 3):
            proc = run_ranks_processes(n, prog)
            sim = run_ranks(n, prog)
            assert proc == sim


class TestLaunchRanks:
    def test_backend_dispatch(self):
        def prog(comm):
            return (comm.rank, comm.size, os.getpid())

        sim = launch_ranks(2, prog, backend="sim")
        proc = launch_ranks(2, prog, backend="process")
        assert [r[:2] for r in sim] == [r[:2] for r in proc] == [(0, 2), (1, 2)]
        assert sim[0][2] == os.getpid()
        assert proc[0][2] != os.getpid()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            launch_ranks(2, lambda comm: None, backend="smoke-signals")

    def test_mpi4py_backend_requires_mpi4py_or_world(self):
        from repro.parallel.mpi_adapter import mpi4py_available

        def prog(comm):
            return comm.rank

        if not mpi4py_available():
            with pytest.raises(RuntimeError, match="mpi4py"):
                launch_ranks(2, prog, backend="mpi4py")
        else:
            # a plain pytest run is a 1-rank world; asking for 2 must fail
            # loudly instead of deadlocking
            with pytest.raises(RuntimeError, match="mpirun"):
                launch_ranks(2, prog, backend="mpi4py")

    def test_env_applied_in_workers(self):
        def prog(comm):
            return os.environ.get("REPRO_PROC_TEST_VAR")

        results = launch_ranks(
            2, prog, backend="process", env={"REPRO_PROC_TEST_VAR": "42"}
        )
        assert results == ["42", "42"]
        assert "REPRO_PROC_TEST_VAR" not in os.environ


class TestSolverBitIdentity:
    """The acceptance criterion: process backend ≡ simulator, bit for bit."""

    @pytest.fixture(scope="class")
    def kernels(self):
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        params = make_two_phase_binary(dim=2)
        params.fluctuation_amplitude = 0.02  # exercise global Philox counters
        return GrandPotentialModel(params).create_kernels()

    @staticmethod
    def _initializer(params):
        from repro.pfm import planar_front

        def init(offset, shape):
            full = planar_front(
                (16, 8), params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
            )
            sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
            return full[sl], 0.0

        return init

    @staticmethod
    def _prog(kernels, forest, init, overlap, gl):
        def prog(comm):
            solver = DistributedSolver(
                kernels, forest, comm=comm, overlap=overlap, ghost_layers=gl
            )
            solver.set_state_from(init)
            series = solver.enable_diagnostics(every=2)
            solver.step(4)
            return solver.gather("phi"), solver.gather("mu"), series.rows

        return prog

    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    @pytest.mark.parametrize("overlap", [False, True])
    @pytest.mark.parametrize("gl", [1, 2])
    def test_process_backend_matches_simulator(self, kernels, n_ranks, overlap, gl):
        init = self._initializer(kernels.model.params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        prog = self._prog(kernels, forest, init, overlap, gl)

        sim = launch_ranks(n_ranks, prog, backend="sim")
        proc = launch_ranks(
            n_ranks, prog, backend="process", recv_timeout=120, join_timeout=300
        )
        sim_phi, sim_mu, sim_rows = sim[0]
        proc_phi, proc_mu, proc_rows = proc[0]
        np.testing.assert_array_equal(proc_phi, sim_phi)
        np.testing.assert_array_equal(proc_mu, sim_mu)
        # the rank-ordered reduction makes the diagnostics series exactly
        # equal, not approximately
        assert proc_rows == sim_rows

    def test_checkpoint_restart_across_backends(self, kernels, tmp_path):
        init = self._initializer(kernels.model.params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)
        ckpt = tmp_path / "state.npz"

        def save_prog(comm):
            solver = DistributedSolver(kernels, forest, comm=comm)
            solver.set_state_from(init)
            solver.step(2)
            solver.save_checkpoint(ckpt)
            solver.step(3)
            return solver.gather("phi")

        def resume_prog(comm):
            solver = DistributedSolver(kernels, forest, comm=comm)
            solver.load_checkpoint(ckpt)
            solver.step(3)
            return solver.gather("phi")

        # checkpoint written by real processes, resumed on the simulator:
        # the two halves must splice together bit-identically
        full = launch_ranks(2, save_prog, backend="process", recv_timeout=120)[0]
        resumed = launch_ranks(2, resume_prog, backend="sim")[0]
        np.testing.assert_array_equal(resumed, full)

    def test_scaling_report_counts_each_rank_once(self, kernels):
        init = self._initializer(kernels.model.params)
        forest = BlockForest((16, 8), (4, 4), periodic=True)

        def prog(comm):
            solver = DistributedSolver(kernels, forest, comm=comm)
            solver.set_state_from(init)
            solver.step(2)
            report = solver.scaling_report()
            matrix = solver.comm_matrix
            return report, matrix.bytes.sum()

        sim = launch_ranks(2, prog, backend="sim")
        proc = launch_ranks(2, prog, backend="process", recv_timeout=120)
        # identical protocol => identical per-rank byte counts; the merged
        # matrix in the report must agree too (no double-counted own rows
        # when the allgather returns pickled copies)
        assert [b for _, b in sim] == [b for _, b in proc]

        def matrix_lines(report):
            # matrix rows only — the λ line below them is wall-clock noise
            lines = report.splitlines()
            return lines[: next(i for i, l in enumerate(lines) if "imbalance" in l)]

        assert matrix_lines(proc[0][0]) == matrix_lines(sim[0][0])


class TestCrossProcessObservability:
    def test_rank_tracers_merge_across_processes(self):
        from repro.observability.distributed import merge_rank_traces, rank_tracer

        def prog(comm):
            with rank_tracer(comm.rank) as tracer:
                with tracer.span("step", category="runtime", rank=comm.rank):
                    time.sleep(0.01)
            return tracer

        tracers = run_ranks_processes(2, prog)
        merged = merge_rank_traces(tracers)
        names = {
            (e.get("pid"), e["name"])
            for e in merged["traceEvents"]
            if e.get("ph") == "X"
        }
        assert (0, "step") in names
        assert (1, "step") in names
        # perf_counter is CLOCK_MONOTONIC (system-wide on Linux): spans from
        # different processes land on one timeline with sane non-negative
        # offsets from the common epoch
        assert all(
            e["ts"] >= 0 for e in merged["traceEvents"] if e.get("ph") == "X"
        )

    def test_profiler_crosses_process_boundary(self):
        from repro.profiling import SolverProfiler

        def prog(comm):
            prof = SolverProfiler()
            with prof.measure("kernel", cells=1000):
                time.sleep(0.002)
            return prof

        merged = SolverProfiler()
        for prof in run_ranks_processes(2, prog):
            merged.merge(prof)
        rec = merged.records["kernel"]
        assert rec.calls == 2
        assert rec.cells == 2000
