"""Time integrator tests: Euler vs Heun temporal convergence order."""

import numpy as np
import pytest

from repro.backends import compile_numpy_kernel, create_arrays
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.discretization.time_integration import HeunKernels
from repro.ir import create_kernel
from repro.parallel import fill_ghosts
from repro.symbolic import EvolutionEquation, Field, PDESystem, div, grad, transient


def _heat_system(name):
    f = Field(f"u_{name}", 1)
    f_dst = Field(f"u_dst_{name}", 1)
    eq = EvolutionEquation(f.center(), div(grad(f.center())))
    return f, f_dst, PDESystem([eq], name=name)


def _run_euler(n, dt, steps, u0):
    f, f_dst, system = _heat_system("eul")
    disc = FiniteDifferenceDiscretization(dim=1)
    ac = discretize_system(system, f_dst, disc, scheme="euler")
    k = compile_numpy_kernel(create_kernel(ac))
    arrays = create_arrays([f, f_dst], (n,), 1)
    arrays[f.name][1:-1] = u0
    for _ in range(steps):
        fill_ghosts(arrays[f.name], 1, 1, mode="periodic")
        k(arrays, dt=dt, dx_0=1.0)
        arrays[f.name], arrays[f_dst.name] = arrays[f_dst.name], arrays[f.name]
    return arrays[f.name][1:-1].copy()


def _run_heun(n, dt, steps, u0):
    f, f_dst, system = _heat_system("heun")
    disc = FiniteDifferenceDiscretization(dim=1)
    kernels = discretize_system(system, f_dst, disc, scheme="heun")
    assert isinstance(kernels, HeunKernels)
    stage = compile_numpy_kernel(create_kernel(kernels.stage_kernel))
    corr = compile_numpy_kernel(create_kernel(kernels.corrector_kernel))
    sf = kernels.stage_field
    arrays = create_arrays([f, f_dst, sf], (n,), 1)
    arrays[f.name][1:-1] = u0
    for _ in range(steps):
        fill_ghosts(arrays[f.name], 1, 1, mode="periodic")
        stage(arrays, dt=dt, dx_0=1.0, ghost_layers=1)
        fill_ghosts(arrays[sf.name], 1, 1, mode="periodic")
        corr(arrays, dt=dt, dx_0=1.0, ghost_layers=1)
        arrays[f.name], arrays[f_dst.name] = arrays[f_dst.name], arrays[f.name]
    return arrays[f.name][1:-1].copy()


class TestHeunStructure:
    def test_two_kernels_and_stage_field(self):
        f, f_dst, system = _heat_system("s")
        disc = FiniteDifferenceDiscretization(dim=1)
        kernels = discretize_system(system, f_dst, disc, scheme="heun")
        stage_k, corr_k = kernels
        assert kernels.stage_field.index_shape == f.index_shape
        # corrector reads source AND stage fields
        read_names = {fl.name for fl in corr_k.fields_read}
        assert f.name in read_names and kernels.stage_field.name in read_names

    def test_split_variant_rejected(self):
        f, f_dst, system = _heat_system("s2")
        disc = FiniteDifferenceDiscretization(dim=1)
        with pytest.raises(NotImplementedError, match="full"):
            discretize_system(system, f_dst, disc, scheme="heun", variant="split")

    def test_transient_rhs_rejected(self):
        f = Field("a_tr", 1)
        f_dst = Field("a_tr_dst", 1)
        g = Field("b_tr", 1)
        g_dst = Field("b_tr_dst", 1)
        eq = EvolutionEquation(f.center(), transient(g.center()))
        disc = FiniteDifferenceDiscretization(dim=1, dst_map={g: g_dst})
        with pytest.raises(NotImplementedError, match="Transient"):
            discretize_system(PDESystem([eq]), f_dst, disc, scheme="heun")

    def test_unknown_scheme_rejected(self):
        f, f_dst, system = _heat_system("s3")
        disc = FiniteDifferenceDiscretization(dim=1)
        with pytest.raises(NotImplementedError, match="rk4"):
            discretize_system(system, f_dst, disc, scheme="rk4")


class TestTemporalConvergence:
    """Heat equation with exact solution: Euler is O(dt), Heun is O(dt²).

    Spatial error is held fixed by comparing against the *semi-discrete*
    exact solution: the 3-point Laplacian has eigenvalue
    λ = −(2 − 2cos(k)) for the mode sin(kx), so the ODE solution is
    exp(λ t) independent of the time integrator.
    """

    n = 32
    total_time = 4.0

    def _setup(self):
        x = np.arange(self.n) + 0.5
        k = 2 * np.pi / self.n
        u0 = np.sin(k * x)
        lam = -(2.0 - 2.0 * np.cos(k))
        exact = np.exp(lam * self.total_time) * u0
        return u0, exact

    def _orders(self, runner):
        u0, exact = self._setup()
        errors = []
        for dt in (0.4, 0.2, 0.1):
            steps = int(round(self.total_time / dt))
            u = runner(self.n, dt, steps, u0)
            errors.append(np.abs(u - exact).max())
        return [np.log2(errors[i] / errors[i + 1]) for i in range(2)]

    def test_euler_first_order(self):
        orders = self._orders(_run_euler)
        assert all(0.8 < o < 1.3 for o in orders), orders

    def test_heun_second_order(self):
        orders = self._orders(_run_heun)
        assert all(1.8 < o < 2.3 for o in orders), orders

    def test_heun_more_accurate_than_euler(self):
        u0, exact = self._setup()
        dt, steps = 0.2, int(round(self.total_time / 0.2))
        err_euler = np.abs(_run_euler(self.n, dt, steps, u0) - exact).max()
        err_heun = np.abs(_run_heun(self.n, dt, steps, u0) - exact).max()
        assert err_heun < err_euler / 5
